// Tests for the web-farm simulation substrate: workload dynamics,
// deterministic replay, and the end-to-end claim the paper's introduction
// makes - bounded-move rebalancing keeps a drifting cluster close to
// balanced at a fraction of full rebalancing's migration traffic.

#include <gtest/gtest.h>

#include <algorithm>

#include "algo/rebalancer.h"
#include "sim/simulator.h"
#include "sim/workload.h"

namespace lrb::sim {
namespace {

WorkloadOptions small_workload() {
  WorkloadOptions w;
  w.num_sites = 60;
  w.max_initial_load = 500;
  w.flash_prob = 0.01;
  return w;
}

TEST(Workload, DeterministicInSeed) {
  Workload a(small_workload(), 42);
  Workload b(small_workload(), 42);
  for (int i = 0; i < 50; ++i) {
    a.step();
    b.step();
  }
  EXPECT_EQ(a.loads(), b.loads());
  EXPECT_EQ(a.bytes(), b.bytes());
}

TEST(Workload, LoadsStayPositiveAndBounded) {
  Workload w(small_workload(), 7);
  for (int i = 0; i < 200; ++i) {
    w.step();
    for (Size l : w.loads()) {
      EXPECT_GE(l, 1);
      EXPECT_LE(l, 500 * 100 * 13);  // drift cap * flash magnitude slack
    }
  }
}

TEST(Workload, FlashCrowdsOccurAndDecay) {
  auto opts = small_workload();
  opts.flash_prob = 0.05;
  opts.flash_duration = 3;
  Workload w(opts, 3);
  std::size_t seen = 0;
  for (int i = 0; i < 100; ++i) {
    w.step();
    seen = std::max(seen, w.active_flashes());
  }
  EXPECT_GT(seen, 0u);
  // With prob 0 flashes never fire.
  opts.flash_prob = 0.0;
  Workload quiet(opts, 3);
  for (int i = 0; i < 100; ++i) {
    quiet.step();
    EXPECT_EQ(quiet.active_flashes(), 0u);
  }
}

TEST(Workload, ZipfInitialLoadsAreSkewed) {
  auto opts = small_workload();
  opts.num_sites = 100;
  Workload w(opts, 11);
  auto loads = w.loads();
  std::sort(loads.begin(), loads.end(), std::greater<>());
  // Head site carries much more than the median site.
  EXPECT_GT(loads[0], 5 * std::max<Size>(1, loads[50]));
}

TEST(InitialPlacement, IsLptBalanced) {
  Workload w(small_workload(), 5);
  const auto placement = initial_placement(w, 6);
  std::vector<Size> server_load(6, 0);
  for (std::size_t site = 0; site < placement.size(); ++site) {
    ASSERT_LT(placement[site], 6u);
    server_load[placement[site]] += w.loads()[site];
  }
  const Size mx = *std::max_element(server_load.begin(), server_load.end());
  const Size mn = *std::min_element(server_load.begin(), server_load.end());
  const Size biggest_site =
      *std::max_element(w.loads().begin(), w.loads().end());
  EXPECT_LE(mx - mn, biggest_site);
}

SimOptions base_sim(std::uint64_t seed) {
  SimOptions opt;
  opt.workload = small_workload();
  opt.num_servers = 5;
  opt.steps = 80;
  opt.rebalance_every = 4;
  opt.move_budget = 6;
  opt.seed = seed;
  return opt;
}

Policy policy_by_name(const std::string& name) {
  for (auto& p : standard_rebalancers()) {
    if (p.name == name) return p.run;
  }
  ADD_FAILURE() << "unknown policy " << name;
  return {};
}

TEST(Simulator, DeterministicReplay) {
  Simulator a(base_sim(9), policy_by_name("m-partition"));
  Simulator b(base_sim(9), policy_by_name("m-partition"));
  const auto ra = a.run();
  const auto rb = b.run();
  ASSERT_EQ(ra.series.size(), rb.series.size());
  for (std::size_t i = 0; i < ra.series.size(); ++i) {
    EXPECT_EQ(ra.series[i].makespan, rb.series[i].makespan);
    EXPECT_EQ(ra.series[i].moves, rb.series[i].moves);
  }
}

TEST(Simulator, MoveBudgetRespectedEveryRound) {
  const auto opt = base_sim(13);
  for (const char* name : {"greedy", "m-partition", "best-of"}) {
    Simulator simulator(opt, policy_by_name(name));
    const auto result = simulator.run();
    for (const auto& step : result.series) {
      EXPECT_LE(step.moves, opt.move_budget) << name << " step " << step.step;
    }
  }
}

TEST(Simulator, NoPolicyMeansNoMoves) {
  Simulator simulator(base_sim(17), policy_by_name("none"));
  const auto result = simulator.run();
  EXPECT_EQ(result.total_moves, 0);
  EXPECT_EQ(result.total_bytes, 0);
}

TEST(Simulator, RebalancingBeatsDoingNothing) {
  // The central motivating claim: with drift + flash crowds, bounded-move
  // rebalancing holds mean imbalance well below the no-op policy.
  const auto opt = base_sim(21);
  Simulator idle(opt, policy_by_name("none"));
  Simulator active(opt, policy_by_name("best-of"));
  const auto idle_result = idle.run();
  const auto active_result = active.run();
  EXPECT_LT(active_result.mean_imbalance, idle_result.mean_imbalance);
}

TEST(Simulator, BoundedMovesMigrateFarLessThanFullRebalance) {
  const auto opt = base_sim(25);
  Simulator bounded(opt, policy_by_name("m-partition"));
  Simulator full(opt, policy_by_name("lpt-full"));
  const auto bounded_result = bounded.run();
  const auto full_result = full.run();
  EXPECT_LT(bounded_result.total_moves, full_result.total_moves / 2);
  // ...while staying in the same imbalance ballpark (within 2x).
  EXPECT_LT(bounded_result.mean_imbalance,
            2.0 * full_result.mean_imbalance + 0.5);
}

TEST(Simulator, MetricsSeriesShapes) {
  const auto opt = base_sim(29);
  Simulator simulator(opt, policy_by_name("greedy"));
  const auto result = simulator.run();
  ASSERT_EQ(result.series.size(), opt.steps);
  for (const auto& step : result.series) {
    EXPECT_GE(step.makespan, step.ideal);
    EXPECT_GE(step.imbalance, 1.0 - 1e-12);
  }
  EXPECT_GE(result.imbalance.mean, 1.0);
  EXPECT_GT(result.makespan.max, 0.0);
}

}  // namespace
}  // namespace lrb::sim

namespace lrb::sim {
namespace {

TEST(Simulator, DrainEventsForceMigrations) {
  auto opt = base_sim(33);
  opt.drain_prob = 0.15;
  Simulator simulator(opt, policy_by_name("none"));
  const auto result = simulator.run();
  // The "none" policy makes no voluntary moves, so every migration observed
  // is drain-forced.
  EXPECT_EQ(result.total_moves, 0);
  EXPECT_GT(result.total_forced_moves, 0);
  std::int64_t from_series = 0;
  for (const auto& step : result.series) from_series += step.forced_moves;
  EXPECT_EQ(from_series, result.total_forced_moves);
}

TEST(Simulator, DrainsAreDeterministicAndOffByDefault) {
  auto opt = base_sim(35);
  Simulator quiet(opt, policy_by_name("none"));
  EXPECT_EQ(quiet.run().total_forced_moves, 0);

  opt.drain_prob = 0.2;
  Simulator a(opt, policy_by_name("greedy"));
  Simulator b(opt, policy_by_name("greedy"));
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.total_forced_moves, rb.total_forced_moves);
  EXPECT_EQ(ra.total_moves, rb.total_moves);
}

TEST(Simulator, RebalancerRecoversFromDrains) {
  // With drains, an active policy should still hold imbalance below the
  // idle policy (it heals the scars the drains leave behind).
  auto opt = base_sim(37);
  opt.drain_prob = 0.1;
  opt.move_budget = 10;
  Simulator idle(opt, policy_by_name("none"));
  Simulator active(opt, policy_by_name("best-of"));
  EXPECT_LT(active.run().mean_imbalance, idle.run().mean_imbalance);
}

}  // namespace
}  // namespace lrb::sim

namespace lrb::sim {
namespace {

TEST(Workload, ChurnReplacesSites) {
  auto opts = small_workload();
  opts.churn_prob = 0.5;
  Workload w(opts, 19);
  std::size_t provisioned_total = 0;
  for (int i = 0; i < 100; ++i) {
    w.step();
    provisioned_total += w.just_provisioned().size();
    EXPECT_EQ(w.num_sites(), opts.num_sites);  // slot count is stable
    for (Size l : w.loads()) EXPECT_GE(l, 1);
  }
  EXPECT_EQ(provisioned_total, w.churn_events());
  EXPECT_GT(w.churn_events(), 20u);
}

TEST(Workload, NoChurnByDefault) {
  Workload w(small_workload(), 19);
  for (int i = 0; i < 50; ++i) {
    w.step();
    EXPECT_TRUE(w.just_provisioned().empty());
  }
  EXPECT_EQ(w.churn_events(), 0u);
}

TEST(Simulator, ChurnedSitesArePlacedNotMigrated) {
  auto opt = base_sim(41);
  opt.workload.churn_prob = 0.3;
  Simulator simulator(opt, policy_by_name("none"));
  const auto result = simulator.run();
  // Fresh deployments are not migrations: the idle policy still reports 0.
  EXPECT_EQ(result.total_moves, 0);
  EXPECT_EQ(result.total_forced_moves, 0);
  for (const auto& step : result.series) {
    EXPECT_GE(step.makespan, step.ideal);
  }
}

TEST(Simulator, ChurnWithActivePolicyStaysHealthy) {
  auto opt = base_sim(43);
  opt.workload.churn_prob = 0.2;
  Simulator idle(opt, policy_by_name("none"));
  Simulator active(opt, policy_by_name("best-of"));
  EXPECT_LE(active.run().mean_imbalance, idle.run().mean_imbalance + 0.05);
}

}  // namespace
}  // namespace lrb::sim

#include "core/generators.h"
#include "sim/policies.h"

namespace lrb::sim {
namespace {

TEST(Policies, ByteBudgetPoliciesRespectBytes) {
  auto opt = base_sim(51);
  opt.byte_costs = true;
  const Cost byte_budget = 3000;
  for (auto policy : {cost_partition_policy(byte_budget),
                      cost_greedy_policy(byte_budget)}) {
    Simulator simulator(opt, policy);
    const auto result = simulator.run();
    for (const auto& step : result.series) {
      // bytes_moved counts policy moves only on non-drain steps here.
      EXPECT_LE(step.bytes_moved, byte_budget) << "step " << step.step;
    }
  }
}

TEST(Policies, UnitRosterLookup) {
  EXPECT_EQ(unit_policies().size(), 5u);
  const auto policy = unit_policy("greedy");
  lrb::GeneratorOptions gen;
  gen.num_jobs = 20;
  gen.num_procs = 4;
  const auto inst = lrb::random_instance(gen, 1);
  const auto result = policy(inst, 3);
  EXPECT_LE(result.moves, 3);
}

TEST(Policies, CostAwareBeatsCostBlindOnBytes) {
  // With byte costs, the byte-budgeted policies move fewer bytes than the
  // unit greedy spending the same number of MOVES unconstrained by bytes.
  auto opt = base_sim(53);
  opt.byte_costs = true;
  Simulator aware(opt, cost_partition_policy(2000));
  Simulator blind(opt, unit_policy("greedy"));
  const auto aware_result = aware.run();
  const auto blind_result = blind.run();
  EXPECT_LT(aware_result.total_bytes, blind_result.total_bytes + 1);
}

}  // namespace
}  // namespace lrb::sim

namespace lrb::sim {
namespace {

TEST(GradualExecution, MigrationRateRespected) {
  auto opt = base_sim(61);
  opt.migrations_per_step = 2;
  opt.move_budget = 12;
  Simulator simulator(opt, policy_by_name("greedy"));
  const auto result = simulator.run();
  std::int64_t total = 0;
  for (const auto& step : result.series) {
    EXPECT_LE(step.moves, 2) << "step " << step.step;
    total += step.moves;
  }
  EXPECT_GT(total, 0);
}

TEST(GradualExecution, ConvergesTowardInstantaneousQuality) {
  // With a generous migration rate, gradual execution should track the
  // instantaneous mode closely.
  auto opt = base_sim(63);
  opt.move_budget = 8;
  Simulator instant(opt, policy_by_name("greedy"));
  auto gradual_opt = opt;
  gradual_opt.migrations_per_step = 8;
  Simulator gradual(gradual_opt, policy_by_name("greedy"));
  const auto instant_result = instant.run();
  const auto gradual_result = gradual.run();
  EXPECT_LT(gradual_result.mean_imbalance,
            instant_result.mean_imbalance + 0.15);
}

TEST(GradualExecution, StaleMigrationsSkippedUnderChurn) {
  // Churn re-places sites mid-plan; the executor must skip stale steps
  // without crashing or double-counting.
  auto opt = base_sim(65);
  opt.migrations_per_step = 1;
  opt.workload.churn_prob = 0.3;
  opt.drain_prob = 0.1;
  Simulator simulator(opt, policy_by_name("best-of"));
  const auto result = simulator.run();
  for (const auto& step : result.series) {
    EXPECT_LE(step.moves, 1);
    EXPECT_GE(step.makespan, step.ideal);
  }
}

TEST(GradualExecution, SlowerDrainMeansWorseTracking) {
  // One migration per step cannot keep up with a 6-move budget every 4
  // steps; imbalance should be no better than the fast-drain run.
  auto opt = base_sim(67);
  opt.move_budget = 6;
  auto slow_opt = opt;
  slow_opt.migrations_per_step = 1;
  auto fast_opt = opt;
  fast_opt.migrations_per_step = 6;
  Simulator slow(slow_opt, policy_by_name("greedy"));
  Simulator fast(fast_opt, policy_by_name("greedy"));
  EXPECT_GE(slow.run().mean_imbalance + 0.03, fast.run().mean_imbalance);
}

}  // namespace
}  // namespace lrb::sim
