// Tests for PARTITION / M-PARTITION (SPAA'03 §3): the 1.5-approximation
// guarantee against the exact optimum, the move-optimality lemmas, the
// threshold machinery, and the paper's tightness example.

#include <gtest/gtest.h>

#include <algorithm>

#include "algo/exact.h"
#include "algo/m_partition.h"
#include "algo/move_min.h"
#include "algo/partition.h"
#include "algo/thresholds.h"
#include "core/generators.h"
#include "core/lower_bounds.h"

namespace lrb {
namespace {

// ---------------------------------------------------------------- thresholds

TEST(Thresholds, CoverAllBehaviourChanges) {
  // Between consecutive candidates, PARTITION's (feasible, removals, L_T)
  // signature must be constant. Verify by evaluating at candidates and at
  // midpoints between them.
  GeneratorOptions opt;
  opt.num_jobs = 12;
  opt.num_procs = 3;
  opt.max_size = 15;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto inst = random_instance(opt, seed);
    const auto candidates = candidate_thresholds(inst);
    for (std::size_t i = 0; i + 1 < candidates.size(); ++i) {
      if (candidates[i + 1] - candidates[i] < 2) continue;
      const Size mid = candidates[i] + (candidates[i + 1] - candidates[i]) / 2;
      const auto at_lo = partition_rebalance_at(inst, candidates[i]);
      const auto at_mid = partition_rebalance_at(inst, mid);
      EXPECT_EQ(at_lo.feasible, at_mid.feasible);
      if (at_lo.feasible) {
        EXPECT_EQ(at_lo.removals, at_mid.removals)
            << "seed=" << seed << " interval [" << candidates[i] << ","
            << candidates[i + 1] << ") mid=" << mid;
        EXPECT_EQ(at_lo.large_total, at_mid.large_total);
      }
    }
  }
}

TEST(Thresholds, SortedUniqueAndBounded) {
  GeneratorOptions opt;
  opt.num_jobs = 30;
  opt.num_procs = 4;
  const auto inst = random_instance(opt, 3);
  const auto candidates = candidate_thresholds(inst);
  EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
  EXPECT_TRUE(std::adjacent_find(candidates.begin(), candidates.end()) ==
              candidates.end());
  EXPECT_LE(candidates.size(), 3 * inst.num_jobs() + 1);
}

// ----------------------------------------------------------------- partition

TEST(Partition, InfeasibleWhenMoreLargeJobsThanProcs) {
  // Three jobs of size 10 on one of two processors: at T = 10 every job is
  // large (2*10 > 10), so L_T = 3 > m = 2.
  const auto inst = make_instance({10, 10, 10}, {0, 0, 0}, 2);
  const auto outcome = partition_rebalance_at(inst, 10);
  EXPECT_FALSE(outcome.feasible);
  EXPECT_EQ(outcome.large_total, 3);
}

TEST(Partition, PaperTightExampleMakesNoMoves) {
  // §3's tightness instance: PARTITION at T = OPT = 2 computes a = (0,0),
  // b = (1,0), selects processor 0, and leaves everything in place.
  const auto family = partition_tight_instance();
  const auto outcome = partition_rebalance_at(family.instance, family.opt);
  ASSERT_TRUE(outcome.feasible);
  EXPECT_EQ(outcome.removals, 0);
  EXPECT_EQ(outcome.result.moves, 0);
  EXPECT_EQ(outcome.result.makespan, 3);
  EXPECT_EQ(outcome.large_total, 1);
  EXPECT_EQ(outcome.large_extra, 0);
  ASSERT_EQ(outcome.a.size(), 2u);
  EXPECT_EQ(outcome.a[0], 0);
  EXPECT_EQ(outcome.b[0], 1);
  EXPECT_EQ(outcome.a[1], 0);
  EXPECT_EQ(outcome.b[1], 0);
  // Exactly the claimed 1.5 ratio.
  EXPECT_DOUBLE_EQ(static_cast<double>(outcome.result.makespan) /
                       static_cast<double>(family.opt),
                   1.5);
}

TEST(Partition, AtTrueOptMakespanWithin1_5AndMovesWithinOptimal) {
  // Theorem 2 + Lemma 4 verified against branch-and-bound ground truth.
  GeneratorOptions opt;
  opt.num_jobs = 10;
  opt.num_procs = 3;
  opt.max_size = 19;
  for (auto placement : {PlacementPolicy::kRandom, PlacementPolicy::kHotspot,
                         PlacementPolicy::kSingleProc}) {
    opt.placement = placement;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      const auto inst = random_instance(opt, seed);
      for (std::int64_t k : {1, 2, 4, 8}) {
        ExactOptions exact_opt;
        exact_opt.max_moves = k;
        const auto exact = exact_rebalance(inst, exact_opt);
        ASSERT_TRUE(exact.proven_optimal);
        const auto outcome = partition_rebalance_at(inst, exact.best.makespan);
        ASSERT_TRUE(outcome.feasible) << "seed=" << seed << " k=" << k;
        // Lemma 3/4: removals at T = OPT never exceed the moves of the
        // cheapest schedule achieving OPT.
        const auto min_moves =
            minimize_moves_exact(inst, exact.best.makespan);
        ASSERT_TRUE(min_moves.feasible && min_moves.proven_optimal);
        EXPECT_LE(outcome.removals, min_moves.best.moves)
            << "seed=" << seed << " k=" << k;
        EXPECT_LE(static_cast<double>(outcome.result.makespan),
                  1.5 * static_cast<double>(exact.best.makespan) + 1e-9)
            << "seed=" << seed << " k=" << k;
      }
    }
  }
}

TEST(Partition, HugeThresholdIsIdentityFreeOfRemovals) {
  GeneratorOptions opt;
  opt.num_jobs = 20;
  opt.num_procs = 4;
  const auto inst = random_instance(opt, 5);
  const auto outcome = partition_rebalance_at(inst, 2 * inst.total_size() + 1);
  ASSERT_TRUE(outcome.feasible);
  EXPECT_EQ(outcome.removals, 0);
  EXPECT_EQ(outcome.result.moves, 0);
  EXPECT_EQ(outcome.result.makespan, inst.initial_makespan());
}

TEST(Partition, StructuralLoadCapsAtAcceptingThreshold) {
  // At any T >= max job: selected processors end with small load <= T/2
  // plus at most one large job; every processor's final load <= 1.5*T
  // before Step 6, and Step 6 keeps loads <= avg + T/2.
  GeneratorOptions opt;
  opt.num_jobs = 40;
  opt.num_procs = 5;
  opt.placement = PlacementPolicy::kHotspot;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const auto inst = random_instance(opt, seed);
    const Size t = std::max(max_job_bound(inst), average_load_bound(inst));
    const auto outcome = partition_rebalance_at(inst, t);
    ASSERT_TRUE(outcome.feasible);
    const double cap = 1.5 * static_cast<double>(t) +
                       static_cast<double>(average_load_bound(inst));
    EXPECT_LE(static_cast<double>(outcome.result.makespan), cap);
  }
}

// --------------------------------------------------------------- m-partition

TEST(MPartition, TightExampleStillExactlyOneAndAHalf) {
  const auto family = partition_tight_instance();
  MPartitionStats stats;
  const auto result = m_partition_rebalance(family.instance, family.k, &stats);
  EXPECT_EQ(result.makespan, 3);
  EXPECT_EQ(result.moves, 0);
  EXPECT_EQ(stats.accepted_threshold, 2);
}

TEST(MPartition, Theorem3RatioAndBudgetAgainstExact) {
  GeneratorOptions opt;
  opt.num_jobs = 10;
  opt.num_procs = 3;
  opt.max_size = 19;
  for (auto placement : {PlacementPolicy::kRandom, PlacementPolicy::kHotspot,
                         PlacementPolicy::kSingleProc}) {
    opt.placement = placement;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      const auto inst = random_instance(opt, seed);
      for (std::int64_t k : {0, 1, 2, 4, 8}) {
        ExactOptions exact_opt;
        exact_opt.max_moves = k;
        const auto exact = exact_rebalance(inst, exact_opt);
        ASSERT_TRUE(exact.proven_optimal);
        MPartitionStats stats;
        const auto result = m_partition_rebalance(inst, k, &stats);
        EXPECT_LE(result.moves, k) << "seed=" << seed << " k=" << k;
        EXPECT_LE(static_cast<double>(result.makespan),
                  1.5 * static_cast<double>(exact.best.makespan) + 1e-9)
            << "seed=" << seed << " k=" << k;
        // The accepted guess never exceeds the true optimum (Lemma 6).
        EXPECT_LE(stats.accepted_threshold, exact.best.makespan)
            << "seed=" << seed << " k=" << k;
      }
    }
  }
}

TEST(MPartition, FastAndReferenceImplementationsAgree) {
  GeneratorOptions opt;
  opt.num_jobs = 24;
  opt.num_procs = 4;
  opt.max_size = 50;
  for (auto placement : {PlacementPolicy::kRandom, PlacementPolicy::kHotspot,
                         PlacementPolicy::kZipfProcs}) {
    opt.placement = placement;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      const auto inst = random_instance(opt, seed);
      for (std::int64_t k : {0, 1, 3, 7, 24}) {
        MPartitionStats fast_stats, ref_stats;
        const auto fast = m_partition_rebalance(inst, k, &fast_stats);
        const auto ref = m_partition_rebalance_reference(inst, k, &ref_stats);
        EXPECT_EQ(fast_stats.accepted_threshold, ref_stats.accepted_threshold)
            << "seed=" << seed << " k=" << k;
        EXPECT_EQ(fast.makespan, ref.makespan);
        EXPECT_EQ(fast.moves, ref.moves);
      }
    }
  }
}

TEST(MPartition, UnitCostBudgetAlwaysRespectedOnLargerInstances) {
  GeneratorOptions opt;
  opt.num_jobs = 300;
  opt.num_procs = 12;
  opt.placement = PlacementPolicy::kHotspot;
  opt.size_dist = SizeDistribution::kZipf;
  opt.max_size = 400;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto inst = random_instance(opt, seed);
    for (std::int64_t k : {0, 5, 20, 100}) {
      const auto result = m_partition_rebalance(inst, k);
      EXPECT_LE(result.moves, k);
      EXPECT_GE(result.makespan, combined_lower_bound(inst, k));
      // 1.5x the certified lower bound would require OPT = LB; use the
      // guaranteed relation against OPT's upper bound instead:
      EXPECT_LE(static_cast<double>(result.makespan),
                1.5 * static_cast<double>(inst.initial_makespan()) + 1e-9);
    }
  }
}

TEST(MPartition, ZeroBudgetIsIdentityWhenNoFreeImprovement) {
  const auto inst = make_instance({9, 1, 4}, {0, 0, 1}, 2);
  const auto result = m_partition_rebalance(inst, 0);
  EXPECT_EQ(result.moves, 0);
  EXPECT_EQ(result.makespan, 10);
}

TEST(MPartition, GreedyTightFamilyHandledWell) {
  // On Theorem 1's adversarial family M-PARTITION gets within 1.5 of OPT
  // (it is allowed to move the big job or the units; either is fine).
  for (ProcId m : {ProcId{3}, ProcId{5}, ProcId{8}}) {
    const auto family = greedy_tight_instance(m);
    const auto result = m_partition_rebalance(family.instance, family.k);
    EXPECT_LE(result.moves, family.k);
    EXPECT_LE(static_cast<double>(result.makespan),
              1.5 * static_cast<double>(family.opt)) << "m=" << m;
  }
}

TEST(MPartition, SingleProcessorIsAlwaysIdentity) {
  const auto inst = make_instance({5, 3, 2}, {0, 0, 0}, 1);
  for (std::int64_t k : {0, 1, 3}) {
    const auto result = m_partition_rebalance(inst, k);
    EXPECT_EQ(result.makespan, 10);
    EXPECT_EQ(result.moves, 0);
  }
}

TEST(MPartition, EmptyInstance) {
  Instance inst;
  inst.num_procs = 3;
  const auto result = m_partition_rebalance(inst, 5);
  EXPECT_EQ(result.makespan, 0);
  EXPECT_EQ(result.moves, 0);
}

TEST(MPartition, AllJobsZeroSize) {
  const auto inst = make_instance({0, 0, 0}, {0, 0, 0}, 2);
  const auto result = m_partition_rebalance(inst, 2);
  EXPECT_EQ(result.makespan, 0);
}

}  // namespace
}  // namespace lrb

namespace lrb {
namespace {

// Brute-force the Definition-1 quantities: a_i = min #small jobs removed so
// the remaining small total fits T/2; b_i = min #jobs removed (post-Step-1
// job set) so the remaining total fits T.
struct BruteAB {
  std::int64_t a = 0;
  std::int64_t b = 0;
};

BruteAB brute_ab(const Instance& inst, ProcId p, Size T) {
  std::vector<Size> smalls, all;
  std::vector<Size> larges;
  for (std::size_t j = 0; j < inst.num_jobs(); ++j) {
    if (inst.initial[j] != p) continue;
    if (2 * inst.sizes[j] > T) {
      larges.push_back(inst.sizes[j]);
    } else {
      smalls.push_back(inst.sizes[j]);
    }
  }
  // Step 1 keeps only the smallest large job.
  all = smalls;
  if (!larges.empty()) {
    all.push_back(*std::min_element(larges.begin(), larges.end()));
  }
  auto min_removals = [](const std::vector<Size>& jobs, Size cap, Size scale) {
    const auto n = jobs.size();
    std::int64_t best = static_cast<std::int64_t>(n);
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
      Size kept = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if ((mask >> i & 1u) != 0) kept += jobs[i];
      }
      if (scale * kept <= cap) {
        best = std::min<std::int64_t>(
            best, static_cast<std::int64_t>(n) - std::popcount(mask));
      }
    }
    return best;
  };
  BruteAB out;
  out.a = min_removals(smalls, T, 2);
  out.b = min_removals(all, T, 1);
  return out;
}

TEST(Partition, AbValuesMatchBruteForceDefinitions) {
  GeneratorOptions opt;
  opt.num_jobs = 9;
  opt.num_procs = 3;
  opt.max_size = 14;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto inst = random_instance(opt, seed);
    for (Size T : {Size{5}, Size{10}, Size{20}, Size{40}}) {
      const auto outcome = partition_rebalance_at(inst, T);
      if (!outcome.feasible) continue;
      for (ProcId p = 0; p < inst.num_procs; ++p) {
        const auto brute = brute_ab(inst, p, T);
        EXPECT_EQ(outcome.a[p], brute.a)
            << "seed=" << seed << " T=" << T << " p=" << p;
        EXPECT_EQ(outcome.b[p], brute.b)
            << "seed=" << seed << " T=" << T << " p=" << p;
      }
    }
  }
}

TEST(Partition, RemovalsFormulaMatchesSelection) {
  // k-hat = L_E + sum(selected a_i) + sum(others b_i), where the selection
  // takes the L_T smallest c_i = a_i - b_i. Verified via the reported
  // per-processor values.
  GeneratorOptions opt;
  opt.num_jobs = 14;
  opt.num_procs = 4;
  opt.max_size = 30;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const auto inst = random_instance(opt, seed);
    for (Size T : {Size{15}, Size{30}, Size{60}}) {
      const auto outcome = partition_rebalance_at(inst, T);
      if (!outcome.feasible) continue;
      std::vector<std::int64_t> c(inst.num_procs);
      for (ProcId p = 0; p < inst.num_procs; ++p) {
        c[p] = outcome.a[p] - outcome.b[p];
      }
      std::sort(c.begin(), c.end());
      std::int64_t expected = outcome.large_extra;
      for (ProcId p = 0; p < inst.num_procs; ++p) expected += outcome.b[p];
      for (std::int64_t i = 0; i < outcome.large_total; ++i) {
        expected += c[static_cast<std::size_t>(i)];
      }
      EXPECT_EQ(outcome.removals, expected) << "seed=" << seed << " T=" << T;
    }
  }
}

}  // namespace
}  // namespace lrb
