// Tests for the analysis/report module and the CLI flag parser.

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/generators.h"
#include "util/flags.h"

namespace lrb {
namespace {

TEST(Analysis, BalancedClusterHasUnitImbalanceAndZeroGini) {
  const auto inst = make_instance({5, 5, 5}, {0, 1, 2}, 3);
  const auto report = analyze_initial(inst);
  EXPECT_EQ(report.makespan, 5);
  EXPECT_EQ(report.min_load, 5);
  EXPECT_DOUBLE_EQ(report.mean_load, 5.0);
  EXPECT_DOUBLE_EQ(report.stddev, 0.0);
  EXPECT_DOUBLE_EQ(report.imbalance, 1.0);
  EXPECT_NEAR(report.gini, 0.0, 1e-12);
}

TEST(Analysis, SkewedClusterMetrics) {
  const auto inst = make_instance({12, 4}, {0, 0}, 4);  // loads {16,0,0,0}
  const auto report = analyze_initial(inst);
  EXPECT_EQ(report.makespan, 16);
  EXPECT_EQ(report.min_load, 0);
  // Fractional optimum = max(ceil(16/4), 12) = 12 -> imbalance 16/12.
  EXPECT_NEAR(report.imbalance, 16.0 / 12.0, 1e-12);
  // One processor holds everything: Gini = (n-1)/n = 0.75.
  EXPECT_NEAR(report.gini, 0.75, 1e-12);
}

TEST(Analysis, AnalyzeArbitraryAssignment) {
  const auto inst = make_instance({12, 4}, {0, 0}, 4);
  const Assignment spread{0, 1};
  const auto report = analyze(inst, spread);
  EXPECT_EQ(report.makespan, 12);
  EXPECT_NEAR(report.imbalance, 1.0, 1e-12);
}

TEST(Analysis, HistogramShape) {
  const auto inst = make_instance({10, 5}, {0, 1}, 2);
  const auto report = analyze_initial(inst);
  const auto chart = load_histogram(report, 10);
  EXPECT_NE(chart.find("P0"), std::string::npos);
  EXPECT_NE(chart.find("##########"), std::string::npos);  // full bar for P0
  EXPECT_NE(chart.find("10"), std::string::npos);
  EXPECT_NE(chart.find("5"), std::string::npos);
}

TEST(Analysis, GiniGrowsWithConcentration) {
  GeneratorOptions even;
  even.num_jobs = 200;
  even.num_procs = 8;
  even.placement = PlacementPolicy::kBalanced;
  GeneratorOptions skew = even;
  skew.placement = PlacementPolicy::kSingleProc;
  const auto balanced = analyze_initial(random_instance(even, 1));
  const auto piled = analyze_initial(random_instance(skew, 1));
  EXPECT_LT(balanced.gini, 0.2);
  EXPECT_GT(piled.gini, 0.8);
}

TEST(Flags, ParsesPairsEqualsAndBooleans) {
  const char* argv[] = {"tool",      "--jobs", "50",     "--dist=zipf",
                        "input.lrb", "--verbose", "--eps", "0.25"};
  const Flags flags(8, argv);
  EXPECT_EQ(flags.get_int("jobs", 0), 50);
  EXPECT_EQ(flags.get_or("dist", ""), "zipf");
  EXPECT_TRUE(flags.has("verbose"));
  EXPECT_EQ(flags.get_or("verbose", ""), "true");
  EXPECT_DOUBLE_EQ(flags.get_double("eps", 0), 0.25);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "input.lrb");
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"tool"};
  const Flags flags(1, argv);
  EXPECT_FALSE(flags.get("anything").has_value());
  EXPECT_EQ(flags.get_int("k", 7), 7);
  EXPECT_EQ(flags.get_or("algo", "greedy"), "greedy");
  EXPECT_TRUE(flags.positional().empty());
}

TEST(Flags, NegativeNumbersAsValues) {
  const char* argv[] = {"tool", "--offset", "-3"};
  const Flags flags(3, argv);
  // "-3" does not start with "--", so it binds as the value.
  EXPECT_EQ(flags.get_int("offset", 0), -3);
}

TEST(Flags, KeysEnumerated) {
  const char* argv[] = {"tool", "--a", "1", "--b=2"};
  const Flags flags(4, argv);
  const auto keys = flags.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

}  // namespace
}  // namespace lrb
