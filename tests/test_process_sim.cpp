// Tests for the process-migration simulator: determinism, lifetime-model
// behaviour, and the qualitative [6]-vs-[9] claim the paper's introduction
// cites (heavy-tailed lifetimes make migration pay; light-tailed ones make
// it nearly pointless).

#include <gtest/gtest.h>

#include "algo/rebalancer.h"
#include "sim/process_sim.h"

namespace lrb::sim {
namespace {

ProcessSimOptions base_options(std::uint64_t seed) {
  ProcessSimOptions opt;
  opt.num_procs = 6;
  opt.steps = 800;
  opt.arrival_rate = 0.8;
  opt.mean_lifetime = 40.0;
  opt.seed = seed;
  return opt;
}

ProcessPolicy best_of_policy() {
  return [](const Instance& inst, std::int64_t k) {
    return best_of_rebalance(inst, k);
  };
}

TEST(ProcessSim, DeterministicInSeed) {
  const auto opt = base_options(5);
  const auto a = run_process_sim(opt, best_of_policy());
  const auto b = run_process_sim(opt, best_of_policy());
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.imbalance.mean, b.imbalance.mean);
}

TEST(ProcessSim, NoPolicyMeansNoMigrations) {
  auto opt = base_options(7);
  opt.rebalance_every = 0;
  const auto result = run_process_sim(opt, {});
  EXPECT_EQ(result.migrations, 0);
  EXPECT_GT(result.completed, 0);
  EXPECT_GE(result.imbalance.mean, 1.0);
}

TEST(ProcessSim, ProcessesCompleteAndPopulationIsStable) {
  const auto opt = base_options(9);
  const auto result = run_process_sim(opt, best_of_policy());
  // With arrival rate 0.8 and mean lifetime 40, Little's law puts the
  // steady-state population near 32.
  EXPECT_GT(result.mean_alive, 10.0);
  EXPECT_LT(result.mean_alive, 120.0);
  EXPECT_GT(result.completed, 300);
}

TEST(ProcessSim, MigrationHelpsMoreUnderHeavyTails) {
  // The E17 claim as a test: the imbalance reduction from migration is
  // larger under Pareto lifetimes than under exponential ones (averaged
  // over seeds to tame the tail variance).
  double heavy_gain = 0.0, light_gain = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto heavy = base_options(seed);
    heavy.lifetime_model = LifetimeModel::kPareto;
    auto heavy_idle = heavy;
    heavy_idle.rebalance_every = 0;
    heavy_gain += run_process_sim(heavy_idle, {}).imbalance.mean -
                  run_process_sim(heavy, best_of_policy()).imbalance.mean;

    auto light = base_options(seed);
    light.lifetime_model = LifetimeModel::kExponential;
    auto light_idle = light;
    light_idle.rebalance_every = 0;
    light_gain += run_process_sim(light_idle, {}).imbalance.mean -
                  run_process_sim(light, best_of_policy()).imbalance.mean;
  }
  EXPECT_GT(heavy_gain, 0.0);      // migration pays under heavy tails
  EXPECT_GT(heavy_gain, light_gain - 0.05);  // and pays (weakly) more
}

TEST(ProcessSim, SlowdownProxyTracksImbalance) {
  auto opt = base_options(11);
  auto idle = opt;
  idle.rebalance_every = 0;
  const auto managed = run_process_sim(opt, best_of_policy());
  const auto unmanaged = run_process_sim(idle, {});
  // Less imbalance should mean completed processes saw less co-load.
  EXPECT_LT(managed.mean_slowdown, unmanaged.mean_slowdown + 0.1);
  EXPECT_GT(managed.mean_slowdown, 0.5);
}

}  // namespace
}  // namespace lrb::sim
