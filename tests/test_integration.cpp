// Cross-module integration tests: the full pipelines a downstream user runs
// (generate -> serialize -> solve -> evaluate), the simulator driving the
// real algorithms, and the hardness gadgets flowing through the exact
// oracles.

#include <gtest/gtest.h>

#include <sstream>

#include "algo/exact.h"
#include "algo/greedy.h"
#include "algo/local_search.h"
#include "algo/m_partition.h"
#include "algo/rebalancer.h"
#include "core/analysis.h"
#include "core/generators.h"
#include "core/io.h"
#include "core/lower_bounds.h"
#include "ext/conflict.h"
#include "ext/constrained.h"
#include "ext/threedm.h"
#include "lp/gap.h"
#include "sim/simulator.h"

namespace lrb {
namespace {

TEST(Integration, GenerateSerializeSolveEvaluate) {
  GeneratorOptions gen;
  gen.num_jobs = 80;
  gen.num_procs = 8;
  gen.placement = PlacementPolicy::kHotspot;
  gen.cost_model = CostModel::kProportional;
  const auto original = random_instance(gen, 2024);

  // Round-trip the instance and every algorithm's assignment through text.
  const auto parsed = instance_from_string(instance_to_string(original));
  ASSERT_TRUE(parsed.has_value());

  for (const auto& algo : standard_rebalancers()) {
    const auto result = algo.run(*parsed, 12);
    ASSERT_FALSE(validate(*parsed, result.assignment).has_value()) << algo.name;

    std::ostringstream oss;
    write_assignment(oss, result.assignment);
    std::istringstream iss(oss.str());
    const auto replayed = read_assignment(iss);
    ASSERT_TRUE(replayed.has_value()) << algo.name;
    EXPECT_EQ(*replayed, result.assignment) << algo.name;

    // The analysis agrees with the result's own accounting.
    const auto report = analyze(*parsed, *replayed);
    EXPECT_EQ(report.makespan, result.makespan) << algo.name;
  }
}

TEST(Integration, PipelineImprovementChain) {
  // Each stage of the practical pipeline is no worse than the previous:
  // initial -> greedy -> best-of -> best-of + local search; all above the
  // certified lower bound and within budget.
  GeneratorOptions gen;
  gen.num_jobs = 60;
  gen.num_procs = 6;
  gen.placement = PlacementPolicy::kSingleProc;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto inst = random_instance(gen, seed);
    const std::int64_t k = 10;
    const Size lb = combined_lower_bound(inst, k);
    const auto greedy = greedy_rebalance(inst, k);
    const auto best = best_of_rebalance(inst, k);
    LocalSearchOptions options;
    options.max_moves = k;
    const auto polished = local_search_improve(inst, best, options);
    EXPECT_LE(greedy.makespan, inst.initial_makespan());
    EXPECT_LE(best.makespan, greedy.makespan);
    EXPECT_LE(polished.makespan, best.makespan);
    EXPECT_GE(polished.makespan, lb);
    EXPECT_LE(polished.moves, k);
  }
}

TEST(Integration, SimulatorDrivesRealAlgorithmsConsistently) {
  // After every simulated rebalance, the placement the simulator carries
  // matches what the policy returned, and the metrics match a recomputation.
  sim::SimOptions options;
  options.workload.num_sites = 80;
  options.num_servers = 6;
  options.steps = 60;
  options.rebalance_every = 6;
  options.move_budget = 5;
  options.seed = 4;
  sim::Simulator simulator(options, [](const Instance& inst, std::int64_t k) {
    const auto result = m_partition_rebalance(inst, k);
    // Policy-level invariants hold inside the loop too.
    EXPECT_LE(result.moves, k);
    EXPECT_FALSE(validate(inst, result.assignment).has_value());
    return result;
  });
  const auto result = simulator.run();
  ASSERT_EQ(result.series.size(), options.steps);
  for (const auto& step : result.series) {
    EXPECT_GE(step.makespan, step.ideal);
  }
}

TEST(Integration, GapPipelineMatchesDirectSolvers) {
  // Rebalancing -> GAP -> LP -> rounding -> back, compared with the direct
  // unit-cost algorithms on the same instance.
  GeneratorOptions gen;
  gen.num_jobs = 10;
  gen.num_procs = 3;
  gen.max_size = 17;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto inst = random_instance(gen, seed);
    const std::int64_t k = 4;
    ExactOptions exact_opt;
    exact_opt.max_moves = k;
    const auto exact = exact_rebalance(inst, exact_opt);
    const auto st = st_rebalance(inst, k);
    const auto mp = m_partition_rebalance(inst, k);
    EXPECT_LE(st.moves, k);
    EXPECT_LE(st.makespan, 2 * exact.best.makespan);
    EXPECT_LE(static_cast<double>(mp.makespan),
              1.5 * static_cast<double>(exact.best.makespan) + 1e-9);
  }
}

TEST(Integration, HardnessGadgetsAgreeAcrossFormulations) {
  // The SAME 3DM instance drives the Theorem 6 (costs), Corollary 1
  // (allowed sets) and Theorem 7 (conflicts) gadgets; all three oracles
  // must agree with the source's matchability.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    for (int matchable = 0; matchable < 2; ++matchable) {
      const auto source = matchable != 0 ? random_matchable_3dm(3, 2, seed)
                                         : unmatchable_3dm(3, 5, seed);
      const bool expect = solve_3dm(source).has_value();
      ASSERT_EQ(expect, matchable != 0);

      const auto constrained = constrained_gadget(source);
      const auto constrained_result = constrained_exact(
          constrained.instance,
          static_cast<std::int64_t>(constrained.instance.base.num_jobs()));
      EXPECT_EQ(constrained_result.best.makespan == 2, expect)
          << "seed=" << seed;

      const auto conflicts = conflict_gadget(source);
      EXPECT_EQ(conflict_exact(conflicts.instance).feasible, expect)
          << "seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace lrb
