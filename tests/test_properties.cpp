// Parameterized property sweeps: every (workload family x budget) cell
// re-verifies the paper's guarantees against exact ground truth. These are
// the library's contract tests - if an algorithm change breaks a theorem,
// some cell here fails with the offending seed in its name.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "algo/cost_greedy.h"
#include "algo/cost_partition.h"
#include "algo/exact.h"
#include "algo/greedy.h"
#include "algo/local_search.h"
#include "algo/m_partition.h"
#include "algo/ptas.h"
#include "algo/rebalancer.h"
#include "algo/unit_exact.h"
#include "core/generators.h"
#include "core/io.h"
#include "core/lower_bounds.h"
#include "lp/gap.h"

namespace lrb {
namespace {

struct FamilySpec {
  const char* name;
  SizeDistribution dist;
  PlacementPolicy placement;
};

constexpr FamilySpec kFamilies[] = {
    {"uniform_random", SizeDistribution::kUniform, PlacementPolicy::kRandom},
    {"uniform_hotspot", SizeDistribution::kUniform, PlacementPolicy::kHotspot},
    {"uniform_pile", SizeDistribution::kUniform, PlacementPolicy::kSingleProc},
    {"zipf_hotspot", SizeDistribution::kZipf, PlacementPolicy::kHotspot},
    {"bimodal_random", SizeDistribution::kBimodal, PlacementPolicy::kRandom},
    {"unit_hotspot", SizeDistribution::kUnit, PlacementPolicy::kHotspot},
};

GeneratorOptions options_for(const FamilySpec& family) {
  GeneratorOptions opt;
  opt.num_jobs = 10;
  opt.num_procs = 3;
  opt.max_size = 23;
  opt.size_dist = family.dist;
  opt.placement = family.placement;
  return opt;
}

// ----------------------------------------------------- unit-cost guarantees

using UnitParam = std::tuple<int, std::int64_t>;

class UnitCostProperties : public ::testing::TestWithParam<UnitParam> {
 protected:
  [[nodiscard]] const FamilySpec& family() const {
    return kFamilies[static_cast<std::size_t>(std::get<0>(GetParam()))];
  }
  [[nodiscard]] std::int64_t k() const { return std::get<1>(GetParam()); }
};

TEST_P(UnitCostProperties, TheoremGuaranteesHoldAgainstExact) {
  const auto opt = options_for(family());
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const auto inst = random_instance(opt, seed);
    ExactOptions exact_opt;
    exact_opt.max_moves = k();
    const auto exact = exact_rebalance(inst, exact_opt);
    ASSERT_TRUE(exact.proven_optimal) << "seed=" << seed;
    const auto opt_value = static_cast<double>(exact.best.makespan);

    // Lower bounds never exceed the optimum.
    EXPECT_LE(combined_lower_bound(inst, k()), exact.best.makespan)
        << "seed=" << seed;

    // GREEDY: Theorem 1.
    const auto greedy = greedy_rebalance(inst, k());
    EXPECT_LE(greedy.moves, k()) << "seed=" << seed;
    EXPECT_LE(static_cast<double>(greedy.makespan),
              (2.0 - 1.0 / 3.0) * opt_value + 1e-9)
        << "seed=" << seed;

    // M-PARTITION: Theorem 3 + Lemma 6.
    MPartitionStats stats;
    const auto mp = m_partition_rebalance(inst, k(), &stats);
    EXPECT_LE(mp.moves, k()) << "seed=" << seed;
    EXPECT_LE(static_cast<double>(mp.makespan), 1.5 * opt_value + 1e-9)
        << "seed=" << seed;
    EXPECT_LE(stats.accepted_threshold, exact.best.makespan) << "seed=" << seed;

    // best-of dominates both.
    const auto best = best_of_rebalance(inst, k());
    EXPECT_LE(best.makespan, std::min(greedy.makespan, mp.makespan))
        << "seed=" << seed;

    // Local search keeps the guarantee and the budget.
    const auto polished = m_partition_ls_rebalance(inst, k());
    EXPECT_LE(polished.makespan, mp.makespan) << "seed=" << seed;
    EXPECT_LE(polished.moves, k()) << "seed=" << seed;
    EXPECT_GE(polished.makespan, exact.best.makespan) << "seed=" << seed;

    // Equal-size exact agrees with B&B whenever it applies.
    if (const auto fast = equal_size_exact_rebalance(inst, k())) {
      EXPECT_EQ(fast->makespan, exact.best.makespan) << "seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UnitCostProperties,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values<std::int64_t>(0, 1, 2, 4, 7)),
    [](const ::testing::TestParamInfo<UnitParam>& param_info) {
      return std::string(
                 kFamilies[static_cast<std::size_t>(
                               std::get<0>(param_info.param))]
                     .name) +
             "_k" + std::to_string(std::get<1>(param_info.param));
    });

// ---------------------------------------------------- budgeted guarantees

using BudgetParam = std::tuple<CostModel, Cost>;

std::string model_name(CostModel model) {
  switch (model) {
    case CostModel::kUnit: return "unit";
    case CostModel::kUniform: return "uniform";
    case CostModel::kProportional: return "proportional";
    case CostModel::kInverse: return "inverse";
    case CostModel::kTwoValued: return "two_valued";
  }
  return "unknown";
}

class BudgetProperties : public ::testing::TestWithParam<BudgetParam> {};

TEST_P(BudgetProperties, CostAwareAlgorithmsHonourBudgetsAndBounds) {
  const auto [model, budget] = GetParam();
  GeneratorOptions opt;
  opt.num_jobs = 9;
  opt.num_procs = 3;
  opt.max_size = 19;
  opt.placement = PlacementPolicy::kHotspot;
  opt.cost_model = model;
  opt.max_cost = 9;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto inst = random_instance(opt, seed);
    ExactOptions exact_opt;
    exact_opt.budget = budget;
    const auto exact = exact_rebalance(inst, exact_opt);
    ASSERT_TRUE(exact.proven_optimal) << "seed=" << seed;
    const auto opt_value = static_cast<double>(exact.best.makespan);

    CostPartitionOptions cp;
    cp.budget = budget;
    const auto partition = cost_partition_rebalance(inst, cp);
    EXPECT_LE(partition.cost, budget) << "seed=" << seed;
    EXPECT_LE(static_cast<double>(partition.makespan),
              1.5 * 1.05 * 1.02 * opt_value + 1e-9)
        << "seed=" << seed;

    const auto st = st_rebalance(inst, budget);
    EXPECT_LE(st.cost, budget) << "seed=" << seed;
    EXPECT_LE(static_cast<double>(st.makespan), 2.0 * opt_value + 1e-9)
        << "seed=" << seed;

    const auto greedy = cost_greedy_rebalance(inst, budget);
    EXPECT_LE(greedy.cost, budget) << "seed=" << seed;
    EXPECT_LE(greedy.makespan, inst.initial_makespan()) << "seed=" << seed;

    PtasOptions ptas_opt;
    ptas_opt.budget = budget;
    ptas_opt.eps = 1.0;
    const auto ptas = ptas_rebalance(inst, ptas_opt);
    ASSERT_TRUE(ptas.success) << "seed=" << seed;
    EXPECT_LE(ptas.result.cost, budget) << "seed=" << seed;
    EXPECT_LE(static_cast<double>(ptas.result.makespan),
              2.0 * opt_value + 1.0)
        << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BudgetProperties,
    ::testing::Combine(::testing::Values(CostModel::kUnit, CostModel::kUniform,
                                         CostModel::kProportional,
                                         CostModel::kInverse,
                                         CostModel::kTwoValued),
                       ::testing::Values<Cost>(0, 4, 12, 40)),
    [](const ::testing::TestParamInfo<BudgetParam>& param_info) {
      return model_name(std::get<0>(param_info.param)) + "_B" +
             std::to_string(std::get<1>(param_info.param));
    });

// -------------------------------------------------- determinism contracts

std::string roster_name(int index) {
  return standard_rebalancers()[static_cast<std::size_t>(index)].name;
}

class Determinism : public ::testing::TestWithParam<int> {};

TEST_P(Determinism, AlgorithmsAreBitReproducible) {
  // Every rebalancer must produce an identical assignment on repeated runs
  // and on an instance that round-tripped through the text format - the
  // property that makes EXPERIMENTS.md regenerable.
  const auto roster = standard_rebalancers();
  const auto& algo = roster[static_cast<std::size_t>(GetParam())];
  GeneratorOptions opt;
  opt.num_jobs = 40;
  opt.num_procs = 6;
  opt.placement = PlacementPolicy::kHotspot;
  opt.cost_model = CostModel::kUniform;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto inst = random_instance(opt, seed);
    for (std::int64_t k : {0, 3, 11}) {
      const auto first = algo.run(inst, k);
      const auto second = algo.run(inst, k);
      EXPECT_EQ(first.assignment, second.assignment)
          << algo.name << " seed=" << seed << " k=" << k;
      // Round-trip the instance through text serialization.
      const auto parsed = instance_from_string(instance_to_string(inst));
      ASSERT_TRUE(parsed.has_value());
      const auto replay = algo.run(*parsed, k);
      EXPECT_EQ(first.assignment, replay.assignment)
          << algo.name << " seed=" << seed << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Determinism, ::testing::Range(0, 5),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           std::string name = roster_name(param_info.param);
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace lrb

namespace lrb {
namespace {

// ------------------------------------------------------------ fuzz sweeps

// Extreme-shape differential fuzzing: for every generated instance, every
// algorithm must produce a structurally valid assignment that honours its
// budget and never beats the certified lower bound. Catches silent
// arithmetic or bookkeeping bugs that the targeted tests might miss.
class FuzzShapes : public ::testing::TestWithParam<int> {};

Instance fuzz_instance(Rng& rng) {
  const auto n = static_cast<std::size_t>(rng.uniform_int(0, 24));
  const auto m = static_cast<ProcId>(rng.uniform_int(1, 6));
  std::vector<Size> sizes(n);
  std::vector<Cost> costs(n);
  std::vector<ProcId> initial(n);
  for (std::size_t j = 0; j < n; ++j) {
    switch (rng.uniform_int(0, 4)) {
      case 0: sizes[j] = 0; break;                                // zero
      case 1: sizes[j] = rng.uniform_int(1, 3); break;            // tiny
      case 2: sizes[j] = rng.uniform_int(1, 1000); break;         // medium
      case 3: sizes[j] = (Size{1} << 32) + rng.uniform_int(0, 9); break;
      default: sizes[j] = rng.uniform_int(1, 10); break;          // duplicates
    }
    costs[j] = rng.uniform_int(0, 100);
    initial[j] = static_cast<ProcId>(rng.uniform_int(0, m - 1));
  }
  return make_instance(std::move(sizes), std::move(costs), std::move(initial),
                       m);
}

TEST_P(FuzzShapes, UniversalInvariantsHold) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int trial = 0; trial < 40; ++trial) {
    const auto inst = fuzz_instance(rng);
    const std::int64_t k = rng.uniform_int(0, 30);
    const Size lb = combined_lower_bound(inst, k);

    for (const auto& algo : standard_rebalancers()) {
      const auto r = algo.run(inst, k);
      ASSERT_FALSE(validate(inst, r.assignment).has_value())
          << algo.name << " trial=" << trial;
      if (algo.name != "lpt-full") {
        EXPECT_LE(r.moves, k) << algo.name << " trial=" << trial;
        EXPECT_GE(r.makespan, lb) << algo.name << " trial=" << trial;
      }
      EXPECT_EQ(r.makespan, makespan(inst, r.assignment)) << algo.name;
      EXPECT_EQ(r.moves, moves_used(inst, r.assignment)) << algo.name;
      EXPECT_EQ(r.cost, relocation_cost(inst, r.assignment)) << algo.name;
    }

    const Cost budget = rng.uniform_int(0, 200);
    CostPartitionOptions cp;
    cp.budget = budget;
    const auto cost_result = cost_partition_rebalance(inst, cp);
    EXPECT_LE(cost_result.cost, budget) << "trial=" << trial;
    const auto greedy_result = cost_greedy_rebalance(inst, budget);
    EXPECT_LE(greedy_result.cost, budget) << "trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FuzzShapes, ::testing::Range(0, 6));

}  // namespace
}  // namespace lrb

#include "algo/two_proc_exact.h"

namespace lrb {
namespace {

// Larger-n guarantee checks against TRUE optima, enabled by the m = 2
// subset-sum DP (branch-and-bound cannot reach this size).
class TwoProcGuarantees : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(TwoProcGuarantees, RatiosHoldAtNFifty) {
  const std::int64_t k = GetParam();
  GeneratorOptions opt;
  opt.num_jobs = 50;
  opt.num_procs = 2;
  opt.max_size = 150;
  opt.placement = PlacementPolicy::kHotspot;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto inst = random_instance(opt, seed);
    const auto exact = two_proc_exact_rebalance(inst, k);
    ASSERT_TRUE(exact.has_value()) << "seed=" << seed;
    const auto opt_value = static_cast<double>(exact->makespan);
    const auto mp = m_partition_rebalance(inst, k);
    EXPECT_LE(static_cast<double>(mp.makespan), 1.5 * opt_value + 1e-9)
        << "seed=" << seed;
    EXPECT_LE(mp.moves, k);
    const auto greedy = greedy_rebalance(inst, k);
    EXPECT_LE(static_cast<double>(greedy.makespan), 1.5 * opt_value + 1e-9)
        << "seed=" << seed;  // 2 - 1/m = 1.5 for m = 2
    const auto polished = m_partition_ls_rebalance(inst, k);
    EXPECT_GE(polished.makespan, exact->makespan) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TwoProcGuarantees,
                         ::testing::Values<std::int64_t>(1, 4, 10, 25),
                         [](const ::testing::TestParamInfo<std::int64_t>& p) {
                           return "k" + std::to_string(p.param);
                         });

}  // namespace
}  // namespace lrb
