// Tests for the arbitrary-cost algorithms: cost-PARTITION (§3.2) and the
// PTAS (§4). Ground truth comes from the branch-and-bound solver with a
// cost budget.

#include <gtest/gtest.h>

#include <algorithm>

#include "algo/cost_partition.h"
#include "algo/exact.h"
#include "algo/ptas.h"
#include "core/generators.h"
#include "core/lower_bounds.h"

namespace lrb {
namespace {

GeneratorOptions cost_options(CostModel model) {
  GeneratorOptions opt;
  opt.num_jobs = 9;
  opt.num_procs = 3;
  opt.max_size = 19;
  opt.placement = PlacementPolicy::kHotspot;
  opt.cost_model = model;
  opt.min_cost = 1;
  opt.max_cost = 9;
  return opt;
}

// ----------------------------------------------------------- cost partition

TEST(CostPartition, ZeroBudgetIsIdentity) {
  const auto inst =
      make_instance({9, 3, 4}, {2, 2, 2}, {0, 0, 1}, 2);
  CostPartitionOptions opt;
  opt.budget = 0;
  const auto result = cost_partition_rebalance(inst, opt);
  EXPECT_EQ(result.cost, 0);
  EXPECT_EQ(result.makespan, inst.initial_makespan());
}

TEST(CostPartition, BudgetAlwaysRespected) {
  for (auto model : {CostModel::kUniform, CostModel::kProportional,
                     CostModel::kInverse, CostModel::kTwoValued}) {
    const auto opt = cost_options(model);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const auto inst = random_instance(opt, seed);
      for (Cost budget : {Cost{0}, Cost{3}, Cost{10}, Cost{50}}) {
        CostPartitionOptions cp;
        cp.budget = budget;
        CostPartitionStats stats;
        const auto result = cost_partition_rebalance(inst, cp, &stats);
        EXPECT_LE(result.cost, budget) << "seed=" << seed;
        EXPECT_FALSE(validate(inst, result.assignment).has_value());
        EXPECT_GE(stats.guesses_evaluated, 1u);
      }
    }
  }
}

TEST(CostPartition, ApproximationAgainstExactBudgetedOptimum) {
  // Theorem from §3.2: makespan <= 1.5 * (1+eps)(1+alpha) * OPT(B).
  for (auto model : {CostModel::kUniform, CostModel::kProportional}) {
    const auto opt = cost_options(model);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const auto inst = random_instance(opt, seed);
      for (Cost budget : {Cost{2}, Cost{6}, Cost{20}}) {
        ExactOptions exact_opt;
        exact_opt.budget = budget;
        const auto exact = exact_rebalance(inst, exact_opt);
        ASSERT_TRUE(exact.proven_optimal);
        CostPartitionOptions cp;
        cp.budget = budget;
        cp.eps = 0.05;
        cp.alpha = 0.02;
        const auto result = cost_partition_rebalance(inst, cp);
        const double bound = 1.5 * 1.05 * 1.02 + 1e-9;
        EXPECT_LE(static_cast<double>(result.makespan),
                  bound * static_cast<double>(exact.best.makespan))
            << "model=" << static_cast<int>(model) << " seed=" << seed
            << " budget=" << budget;
      }
    }
  }
}

TEST(CostPartition, UnitCostsRecoverMPartitionQuality) {
  // With unit costs, budget B plays the role of k.
  const auto opt = cost_options(CostModel::kUnit);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto inst = random_instance(opt, seed);
    for (Cost budget : {Cost{1}, Cost{3}, Cost{6}}) {
      ExactOptions exact_opt;
      exact_opt.max_moves = budget;
      const auto exact = exact_rebalance(inst, exact_opt);
      ASSERT_TRUE(exact.proven_optimal);
      CostPartitionOptions cp;
      cp.budget = budget;
      const auto result = cost_partition_rebalance(inst, cp);
      EXPECT_LE(result.moves, budget);
      EXPECT_LE(static_cast<double>(result.makespan),
                1.5 * 1.05 * 1.02 * static_cast<double>(exact.best.makespan) + 1e-9)
          << "seed=" << seed << " budget=" << budget;
    }
  }
}

TEST(CostPartition, LargeBudgetApproachesUnconstrainedBalance) {
  const auto inst = make_instance({5, 5, 5, 5}, {1, 1, 1, 1}, {0, 0, 0, 0}, 4);
  CostPartitionOptions cp;
  cp.budget = 4;
  const auto result = cost_partition_rebalance(inst, cp);
  EXPECT_LE(result.makespan, 10);  // at least two jobs spread out
}

// -------------------------------------------------------------------- ptas

TEST(Ptas, IdentityWhenBudgetZero) {
  const auto inst = make_instance({7, 2, 5}, {3, 1, 2}, {0, 0, 1}, 2);
  PtasOptions opt;
  opt.budget = 0;
  opt.eps = 0.5;
  const auto r = ptas_rebalance(inst, opt);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.result.cost, 0);
  EXPECT_EQ(r.result.makespan, inst.initial_makespan());
}

TEST(Ptas, EmptyInstance) {
  Instance inst;
  inst.num_procs = 2;
  PtasOptions opt;
  const auto r = ptas_rebalance(inst, opt);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.result.makespan, 0);
}

TEST(Ptas, GuaranteeAgainstExactAcrossEps) {
  for (auto model : {CostModel::kUniform, CostModel::kProportional}) {
    GeneratorOptions gen = cost_options(model);
    gen.num_jobs = 8;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      const auto inst = random_instance(gen, seed);
      for (Cost budget : {Cost{3}, Cost{12}}) {
        ExactOptions exact_opt;
        exact_opt.budget = budget;
        const auto exact = exact_rebalance(inst, exact_opt);
        ASSERT_TRUE(exact.proven_optimal);
        for (double eps : {2.0, 1.0, 0.5}) {
          PtasOptions popt;
          popt.budget = budget;
          popt.eps = eps;
          const auto r = ptas_rebalance(inst, popt);
          ASSERT_TRUE(r.success) << "seed=" << seed << " eps=" << eps;
          EXPECT_LE(r.result.cost, budget);
          // +1 absorbs the integer granularity of the unit u = floor(dA).
          EXPECT_LE(static_cast<double>(r.result.makespan),
                    (1.0 + eps) * static_cast<double>(exact.best.makespan) + 1.0)
              << "model=" << static_cast<int>(model) << " seed=" << seed
              << " budget=" << budget << " eps=" << eps;
        }
      }
    }
  }
}

TEST(Ptas, TighterEpsNeverWorseMuch) {
  // Smaller eps must track the optimum more closely (weak monotonicity up
  // to discretization noise): check the 0.25-eps run beats the 2.0-eps
  // guarantee bound.
  GeneratorOptions gen = cost_options(CostModel::kUniform);
  const auto inst = random_instance(gen, 31);
  PtasOptions popt;
  popt.budget = 10;
  popt.eps = 0.25;
  const auto tight = ptas_rebalance(inst, popt);
  ASSERT_TRUE(tight.success);
  ExactOptions exact_opt;
  exact_opt.budget = 10;
  const auto exact = exact_rebalance(inst, exact_opt);
  EXPECT_LE(static_cast<double>(tight.result.makespan),
            1.25 * static_cast<double>(exact.best.makespan) + 1.0);
}

TEST(Ptas, UnboundedBudgetApproachesLptQuality) {
  const auto inst = make_instance({4, 4, 4, 4, 4, 4}, {0, 0, 0, 0, 0, 0}, 3);
  PtasOptions popt;
  popt.eps = 0.5;
  const auto r = ptas_rebalance(inst, popt);
  ASSERT_TRUE(r.success);
  // Perfect balance is 8; (1+eps) allows up to 12 but the DP should land 8.
  EXPECT_LE(r.result.makespan, 12);
}

TEST(Ptas, StateLimitReportedAsFailure) {
  GeneratorOptions gen;
  gen.num_jobs = 40;
  gen.num_procs = 6;
  gen.max_size = 1000;
  const auto inst = random_instance(gen, 4);
  PtasOptions popt;
  popt.eps = 0.1;  // fine discretization on a wide instance
  popt.state_limit = 200;
  const auto r = ptas_rebalance(inst, popt);
  EXPECT_FALSE(r.success);
  // Fallback result is still a valid (identity) solution.
  EXPECT_EQ(r.result.moves, 0);
}

}  // namespace
}  // namespace lrb
