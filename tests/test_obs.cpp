// Tests for the embedded metrics layer (src/obs): counter and histogram
// correctness, exact-percentile agreement with util/stats, registry JSON,
// and concurrent hammering (run under TSan in CI — the hot paths must be
// wait-free and race-free against a concurrent snapshot).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/stats.h"

namespace lrb::obs {
namespace {

TEST(Counter, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ConcurrentAddsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  Histogram h;
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.retained, 0u);
  EXPECT_EQ(snap.min, 0.0);
  EXPECT_EQ(snap.max, 0.0);
  EXPECT_EQ(snap.p50, 0.0);
  EXPECT_EQ(snap.p99, 0.0);
  for (const auto b : snap.buckets) EXPECT_EQ(b, 0u);
}

TEST(Histogram, PercentilesMatchPercentileSortedExactly) {
  // Below reservoir capacity the snapshot must reproduce percentile_sorted
  // over the full sample set exactly (not a bucket approximation).
  Histogram h;
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) {
    const double ms = static_cast<double>((i * 37) % 997) / 10.0;
    samples.push_back(ms);
    h.record(ms);
  }
  std::sort(samples.begin(), samples.end());
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, samples.size());
  EXPECT_EQ(snap.retained, samples.size());
  EXPECT_DOUBLE_EQ(snap.min, samples.front());
  EXPECT_DOUBLE_EQ(snap.max, samples.back());
  EXPECT_DOUBLE_EQ(snap.p50, percentile_sorted(samples, 0.5));
  EXPECT_DOUBLE_EQ(snap.p90, percentile_sorted(samples, 0.9));
  EXPECT_DOUBLE_EQ(snap.p99, percentile_sorted(samples, 0.99));
}

TEST(Histogram, BucketCountsCoverFullHistory) {
  Histogram h(/*reservoir_capacity=*/16);
  // 100 samples of 0.3 ms with a 16-slot reservoir: buckets still see all
  // 100 (they cover unbounded history), the reservoir only the last 16.
  for (int i = 0; i < 100; ++i) h.record(0.3);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.retained, 16u);
  std::uint64_t total = 0;
  for (const auto b : snap.buckets) total += b;
  EXPECT_EQ(total, 100u);
  // 0.3 ms falls in the (0.2, 0.5] bucket.
  std::size_t bucket = 0;
  while (bucket < kLatencyBuckets - 1 &&
         kLatencyBucketBoundsMs[bucket] < 0.3) {
    ++bucket;
  }
  EXPECT_EQ(snap.buckets[bucket], 100u);
}

TEST(Histogram, NegativeAndHugeSamplesAreHandled) {
  Histogram h;
  h.record(-5.0);    // clamps to 0
  h.record(1e9);     // overflow bucket
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 1e9);
  EXPECT_EQ(snap.buckets[kLatencyBuckets - 1], 1u);  // overflow
  EXPECT_EQ(snap.buckets[0], 1u);                    // clamped negative
}

TEST(Histogram, ConcurrentRecordWithRacingSnapshots) {
  // TSan target: writers hammer record() while a reader keeps cutting
  // snapshots. Snapshots may miss in-flight samples but must never crash,
  // report a sample that was never recorded, or tear a value.
  Histogram h(1024);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 50000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snap = h.snapshot();
      EXPECT_LE(snap.retained, 1024u);
      EXPECT_GE(snap.max, snap.min);
      // Only values in [1.0, 2.0] are ever recorded.
      if (snap.retained > 0) {
        EXPECT_GE(snap.min, 1.0);
        EXPECT_LE(snap.max, 2.0);
        EXPECT_GE(snap.p50, 1.0);
        EXPECT_LE(snap.p50, 2.0);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&h, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        h.record(1.0 + static_cast<double>((i + w) % 100) / 100.0);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kWriters) * kPerWriter);
}

TEST(Registry, CounterAndHistogramReferencesAreStable) {
  Registry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = registry.histogram("lat");
  Histogram& h2 = registry.histogram("lat");
  EXPECT_EQ(&h1, &h2);
  a.add(3);
  EXPECT_EQ(registry.counter("x").value(), 3u);
}

TEST(Registry, ConcurrentRegistrationIsSafe) {
  Registry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 100; ++i) {
        registry.counter("c" + std::to_string(i % 10)).add();
        registry.histogram("h" + std::to_string(i % 5)).record(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(registry.counter("c" + std::to_string(i)).value(), 80u);
  }
}

TEST(Registry, ToJsonHasStableShape) {
  Registry registry;
  registry.counter("b.count").add(2);
  registry.counter("a.count").add(1);
  registry.histogram("lat").record(0.5);
  const std::string json = registry.to_json();
  // Stable key order: map iteration is lexicographic.
  const auto a_pos = json.find("\"a.count\": 1");
  const auto b_pos = json.find("\"b.count\": 2");
  ASSERT_NE(a_pos, std::string::npos) << json;
  ASSERT_NE(b_pos, std::string::npos) << json;
  EXPECT_LT(a_pos, b_pos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(Registry, GlobalIsASingleton) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

}  // namespace
}  // namespace lrb::obs
