// Replays the committed regression corpus (tests/corpus/, see its
// README.md) on every test run:
//
//   * each *.lrb file — a fuzz-style minimized repro — goes through the
//     full differential harness: every roster algorithm certified, every
//     proven ratio respected;
//   * each seed in chaos_seeds.txt is re-fought as a complete chaos
//     campaign: seeded fault injection around a real server with
//     byte-identical replies and zero lost/duplicated requests;
//   * each *.lrbd file — a pinned streaming-session transcript — is
//     replayed through stream::replay_serial_reference and then streamed
//     as a live session against a sharded server, every ack byte-compared
//     against the reference (docs/streaming.md).
//
// The corpus directory is baked in at build time (LRB_CORPUS_DIR), so the
// test needs no working-directory assumptions. An unreadable or malformed
// corpus entry is a test failure, not a skip: the corpus is a contract.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/differential.h"
#include "core/io.h"
#include "engine/batch_solver.h"
#include "obs/metrics.h"
#include "stream/delta_log.h"
#include "stream/replay.h"
#include "svc/fault/chaos.h"
#include "svc/server.h"
#include "svc/session_client.h"

#ifndef LRB_CORPUS_DIR
#error "LRB_CORPUS_DIR must point at the committed tests/corpus directory"
#endif

namespace lrb {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "unreadable corpus entry " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Pulls k / budget / known-opt out of a repro's "# k=..." header line.
DifferentialOptions parse_repro_options(const std::string& text,
                                        bool* found_k) {
  DifferentialOptions options;
  *found_k = false;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream words(line);
    std::string word;
    if (!(words >> word) || word != "#") continue;
    while (words >> word) {
      if (word.rfind("k=", 0) == 0) {
        options.k = std::stoll(word.substr(2));
        *found_k = true;
      } else if (word.rfind("budget=", 0) == 0) {
        options.budget = std::stoll(word.substr(7));
      } else if (word.rfind("known-opt=", 0) == 0) {
        options.known_opt = std::stoll(word.substr(10));
      }
    }
    if (*found_k) break;
  }
  return options;
}

std::vector<fs::path> corpus_files(const std::string& extension) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(LRB_CORPUS_DIR)) {
    if (entry.path().extension() == extension) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CorpusReplay, EveryInstanceRepro) {
  const auto files = corpus_files(".lrb");
  ASSERT_FALSE(files.empty())
      << "no *.lrb entries under " << LRB_CORPUS_DIR;
  for (const auto& path : files) {
    SCOPED_TRACE(path.filename().string());
    const std::string text = slurp(path);
    bool found_k = false;
    const DifferentialOptions options = parse_repro_options(text, &found_k);
    EXPECT_TRUE(found_k) << "repro has no '# k=' header";
    std::string error;
    const auto instance = instance_from_string(text, &error);
    ASSERT_TRUE(instance) << error;
    const DifferentialReport report = differential_check(*instance, options);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(CorpusReplay, EveryInstanceReproThroughTheCachePath) {
  // The same corpus again, but through a cache-enabled BatchSolver: each
  // repro is solved twice per algorithm (cold miss, then warm hit) and
  // both replies must be byte-identical to cached_serial_reference
  // (docs/caching.md). Cached serving must never resurrect a fixed bug
  // differently from the serial path.
  obs::Registry registry;
  engine::BatchOptions options;
  options.workers = 2;
  options.cache_bytes = std::size_t{4} << 20;
  options.metrics = &registry;
  engine::BatchSolver solver(options);

  const auto files = corpus_files(".lrb");
  ASSERT_FALSE(files.empty());
  for (const auto& path : files) {
    SCOPED_TRACE(path.filename().string());
    const std::string text = slurp(path);
    bool found_k = false;
    const DifferentialOptions repro = parse_repro_options(text, &found_k);
    ASSERT_TRUE(found_k);
    std::string error;
    const auto instance = instance_from_string(text, &error);
    ASSERT_TRUE(instance) << error;
    for (const auto backend :
         {solver::BackendId::kGreedy, solver::BackendId::kMPartition,
          solver::BackendId::kBestOf, solver::BackendId::kLpt,
          solver::BackendId::kLocalSearch}) {
      const RebalanceResult want =
          engine::cached_serial_reference(backend, *instance, repro.k);
      engine::BatchSolver::TickItem item;
      item.instance = &*instance;
      item.k = repro.k;
      item.spec = backend;
      for (const char* pass : {"cold", "warm"}) {
        const auto got = solver.solve_items({&item, 1});
        ASSERT_EQ(got.size(), 1u);
        EXPECT_EQ(got[0].assignment, want.assignment)
            << solver::backend_name(backend) << " " << pass;
        EXPECT_EQ(got[0].makespan, want.makespan);
        EXPECT_EQ(got[0].moves, want.moves);
        EXPECT_EQ(got[0].cost, want.cost);
        EXPECT_EQ(got[0].threshold, want.threshold);
      }
    }
  }
  // The second pass per (repro, backend) is a guaranteed hit.
  EXPECT_GE(registry.counter("cache.hits").value(), 5 * files.size());
}

TEST(CorpusReplay, EveryStreamTranscript) {
  const auto files = corpus_files(".lrbd");
  ASSERT_FALSE(files.empty())
      << "no *.lrbd entries under " << LRB_CORPUS_DIR;

  // One shared sharded server: the transcripts are replayed as live
  // sessions on top of the pure-reference pass, so both checkers stay
  // honest against the committed corpus.
  const std::string socket =
      "/tmp/lrb_corpus_stream_" + std::to_string(getpid()) + ".sock";
  obs::Registry registry;
  svc::ServerOptions server_options;
  server_options.unix_path = socket;
  server_options.metrics = &registry;
  server_options.reactors = 2;
  server_options.engine_workers = 2;
  server_options.engine.workers = 2;
  svc::Server server(std::move(server_options));
  std::string start_error;
  ASSERT_TRUE(server.start(&start_error)) << start_error;
  std::thread runner([&server] { server.run(); });

  std::uint64_t session_id = 1;
  for (const auto& path : files) {
    SCOPED_TRACE(path.filename().string());
    std::string error;
    const auto log = stream::delta_log_from_string(slurp(path), &error);
    ASSERT_TRUE(log) << error;

    // The pure reference must accept the transcript and be deterministic.
    const auto first = stream::replay_serial_reference(
        log->initial, log->trigger, log->deltas);
    ASSERT_TRUE(first.ok) << first.error;
    ASSERT_EQ(first.steps.size(), log->deltas.size());
    const auto again = stream::replay_serial_reference(
        log->initial, log->trigger, log->deltas);
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_EQ(again.final_stats.digest, first.final_stats.digest);
    EXPECT_EQ(again.final_stats.makespan, first.final_stats.makespan);
    EXPECT_EQ(again.final_stats.plans_emitted, first.final_stats.plans_emitted);

    // And a live session must stream back the exact same bytes.
    svc::StreamRunOptions options;
    options.endpoint = svc::Endpoint::unix_socket(socket);
    options.session_id = session_id++;
    options.frame_size = 5;
    options.check = true;
    const auto run = svc::run_session_stream(*log, options);
    EXPECT_TRUE(run.ok) << run.error;
    EXPECT_EQ(run.mismatches, 0u);
    EXPECT_EQ(run.final_digest, first.final_stats.digest);
    EXPECT_EQ(run.deltas_applied + run.deltas_rejected, log->deltas.size());
  }

  server.notify_signal();
  runner.join();
  unlink(socket.c_str());
}

TEST(CorpusReplay, EveryChaosSeed) {
  const fs::path path = fs::path(LRB_CORPUS_DIR) / "chaos_seeds.txt";
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing " << path;
  std::vector<std::uint64_t> seeds;
  std::string line;
  while (std::getline(in, line)) {
    const auto start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    seeds.push_back(std::stoull(line.substr(start), nullptr, 0));
  }
  ASSERT_FALSE(seeds.empty()) << "no seeds in " << path;
  for (const std::uint64_t seed : seeds) {
    svc::fault::CampaignOptions options;
    options.seed = seed;
    options.clients = 2;
    options.requests_per_client = 4;
    options.check = true;
    const auto result = svc::fault::run_campaign(options);
    for (const auto& error : result.errors) {
      ADD_FAILURE() << "seed 0x" << std::hex << seed << ": " << error;
    }
    EXPECT_TRUE(result.ok) << result.summary();
  }
}

}  // namespace
}  // namespace lrb
