// Replays the committed regression corpus (tests/corpus/, see its
// README.md) on every test run:
//
//   * each *.lrb file — a fuzz-style minimized repro — goes through the
//     full differential harness: every roster algorithm certified, every
//     proven ratio respected;
//   * each seed in chaos_seeds.txt is re-fought as a complete chaos
//     campaign: seeded fault injection around a real server with
//     byte-identical replies and zero lost/duplicated requests.
//
// The corpus directory is baked in at build time (LRB_CORPUS_DIR), so the
// test needs no working-directory assumptions. An unreadable or malformed
// corpus entry is a test failure, not a skip: the corpus is a contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/differential.h"
#include "core/io.h"
#include "engine/batch_solver.h"
#include "obs/metrics.h"
#include "svc/fault/chaos.h"

#ifndef LRB_CORPUS_DIR
#error "LRB_CORPUS_DIR must point at the committed tests/corpus directory"
#endif

namespace lrb {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "unreadable corpus entry " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Pulls k / budget / known-opt out of a repro's "# k=..." header line.
DifferentialOptions parse_repro_options(const std::string& text,
                                        bool* found_k) {
  DifferentialOptions options;
  *found_k = false;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream words(line);
    std::string word;
    if (!(words >> word) || word != "#") continue;
    while (words >> word) {
      if (word.rfind("k=", 0) == 0) {
        options.k = std::stoll(word.substr(2));
        *found_k = true;
      } else if (word.rfind("budget=", 0) == 0) {
        options.budget = std::stoll(word.substr(7));
      } else if (word.rfind("known-opt=", 0) == 0) {
        options.known_opt = std::stoll(word.substr(10));
      }
    }
    if (*found_k) break;
  }
  return options;
}

std::vector<fs::path> corpus_files(const std::string& extension) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(LRB_CORPUS_DIR)) {
    if (entry.path().extension() == extension) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CorpusReplay, EveryInstanceRepro) {
  const auto files = corpus_files(".lrb");
  ASSERT_FALSE(files.empty())
      << "no *.lrb entries under " << LRB_CORPUS_DIR;
  for (const auto& path : files) {
    SCOPED_TRACE(path.filename().string());
    const std::string text = slurp(path);
    bool found_k = false;
    const DifferentialOptions options = parse_repro_options(text, &found_k);
    EXPECT_TRUE(found_k) << "repro has no '# k=' header";
    std::string error;
    const auto instance = instance_from_string(text, &error);
    ASSERT_TRUE(instance) << error;
    const DifferentialReport report = differential_check(*instance, options);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(CorpusReplay, EveryInstanceReproThroughTheCachePath) {
  // The same corpus again, but through a cache-enabled BatchSolver: each
  // repro is solved twice per algorithm (cold miss, then warm hit) and
  // both replies must be byte-identical to cached_serial_reference
  // (docs/caching.md). Cached serving must never resurrect a fixed bug
  // differently from the serial path.
  obs::Registry registry;
  engine::BatchOptions options;
  options.workers = 2;
  options.cache_bytes = std::size_t{4} << 20;
  options.metrics = &registry;
  engine::BatchSolver solver(options);

  const auto files = corpus_files(".lrb");
  ASSERT_FALSE(files.empty());
  for (const auto& path : files) {
    SCOPED_TRACE(path.filename().string());
    const std::string text = slurp(path);
    bool found_k = false;
    const DifferentialOptions repro = parse_repro_options(text, &found_k);
    ASSERT_TRUE(found_k);
    std::string error;
    const auto instance = instance_from_string(text, &error);
    ASSERT_TRUE(instance) << error;
    for (const auto algo : {engine::Algo::kGreedy, engine::Algo::kMPartition,
                            engine::Algo::kBestOf}) {
      const RebalanceResult want =
          engine::cached_serial_reference(algo, *instance, repro.k);
      engine::BatchSolver::TickItem item;
      item.instance = &*instance;
      item.k = repro.k;
      item.algo = algo;
      for (const char* pass : {"cold", "warm"}) {
        const auto got = solver.solve_items({&item, 1});
        ASSERT_EQ(got.size(), 1u);
        EXPECT_EQ(got[0].assignment, want.assignment)
            << engine::algo_name(algo) << " " << pass;
        EXPECT_EQ(got[0].makespan, want.makespan);
        EXPECT_EQ(got[0].moves, want.moves);
        EXPECT_EQ(got[0].cost, want.cost);
        EXPECT_EQ(got[0].threshold, want.threshold);
      }
    }
  }
  // The second pass per (repro, algo) is a guaranteed hit.
  EXPECT_GE(registry.counter("cache.hits").value(), 3 * files.size());
}

TEST(CorpusReplay, EveryChaosSeed) {
  const fs::path path = fs::path(LRB_CORPUS_DIR) / "chaos_seeds.txt";
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing " << path;
  std::vector<std::uint64_t> seeds;
  std::string line;
  while (std::getline(in, line)) {
    const auto start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    seeds.push_back(std::stoull(line.substr(start), nullptr, 0));
  }
  ASSERT_FALSE(seeds.empty()) << "no seeds in " << path;
  for (const std::uint64_t seed : seeds) {
    svc::fault::CampaignOptions options;
    options.seed = seed;
    options.clients = 2;
    options.requests_per_client = 4;
    options.check = true;
    const auto result = svc::fault::run_campaign(options);
    for (const auto& error : result.errors) {
      ADD_FAILURE() << "seed 0x" << std::hex << seed << ": " << error;
    }
    EXPECT_TRUE(result.ok) << result.summary();
  }
}

}  // namespace
}  // namespace lrb
