// Unit tests for src/util: rng determinism and distribution sanity, summary
// statistics, table rendering, and the thread pool.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace lrb {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LE(same, 1);
}

TEST(Rng, UniformIntInRangeAndCoversEndpoints) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, Uniform01InHalfOpenRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkDecorrelates) {
  Rng a(99);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LE(same, 1);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  shuffle(std::span<int>(v), rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(37);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  shuffle(std::span<int>(v), rng);
  int fixed = 0;
  for (int i = 0; i < 100; ++i) fixed += (v[static_cast<std::size_t>(i)] == i);
  EXPECT_LT(fixed, 20);
}

TEST(Zipf, RankZeroMostLikelyAndMonotone) {
  Rng rng(41);
  ZipfSampler sampler(10, 1.5);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 200000; ++i) ++hits[sampler(rng)];
  EXPECT_GT(hits[0], hits[1]);
  EXPECT_GT(hits[1], hits[5]);
  EXPECT_GT(hits[5], 0);
}

TEST(Zipf, AlphaZeroIsUniform) {
  Rng rng(43);
  ZipfSampler sampler(4, 0.0);
  std::vector<int> hits(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hits[sampler(rng)];
  for (int h : hits) EXPECT_NEAR(static_cast<double>(h) / n, 0.25, 0.01);
}

TEST(Stats, OnlineMatchesClosedForm) {
  OnlineStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.variance(), 1.25);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Stats, SummaryPercentiles) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(i);
  const auto s = summarize(samples);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
}

TEST(Stats, SummaryEmptyIsZero) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, PercentileSortedInterpolates) {
  const std::vector<double> sorted{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 1.0), 10.0);
}

TEST(Stats, PercentileSortedIsTotal) {
  // The function is total so metrics snapshots can call it unconditionally:
  // empty input yields 0, out-of-range q clamps, NaN q means the minimum.
  EXPECT_DOUBLE_EQ(percentile_sorted({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted({}, -3.0), 0.0);
  const std::vector<double> sorted{2.0, 4.0, 8.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, -1.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 2.0), 8.0);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, -inf), 2.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, inf), 8.0);
  EXPECT_DOUBLE_EQ(
      percentile_sorted(sorted, std::numeric_limits<double>::quiet_NaN()),
      2.0);
  const std::vector<double> one{7.5};
  EXPECT_DOUBLE_EQ(percentile_sorted(one, 0.0), 7.5);
  EXPECT_DOUBLE_EQ(percentile_sorted(one, 0.5), 7.5);
  EXPECT_DOUBLE_EQ(percentile_sorted(one, 1.0), 7.5);
}

TEST(Stats, Geomean) {
  const std::vector<double> v{1.0, 4.0};
  EXPECT_DOUBLE_EQ(geomean(v), 2.0);
}

TEST(Stats, LogLogSlopeRecoversExponent) {
  std::vector<double> x, y;
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    x.push_back(v);
    y.push_back(3.0 * v * v);  // slope 2 in log-log space
  }
  EXPECT_NEAR(loglog_slope(x, y), 2.0, 1e-9);
}

TEST(Stats, FormatDouble) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.123456, 3), "0.123");
}

TEST(Table, AlignedRendering) {
  Table t({"name", "value"});
  t.row().add("alpha").add(std::int64_t{42});
  t.row().add("b").add(1.5);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.row().add("x,y").add("say \"hi\"");
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_NE(oss.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(oss.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  parallel_for(pool, 0, 50, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 5, 5, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleDrains) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, WaitIdleCoversNestedSubmissions) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &counter] {
      ++counter;
      // Tasks submitted from inside tasks must also be drained before
      // wait_idle returns.
      pool.submit([&counter] { ++counter; });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPool, DestructorDrainsPendingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    // One long task wedges the single worker so the rest are still queued
    // when the destructor runs; it must finish them, not drop them.
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++counter;
      });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ManyProducersStress) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  producers.reserve(8);
  for (int p = 0; p < 8; ++p) {
    producers.emplace_back([&pool, &counter] {
      std::vector<std::future<void>> futures;
      futures.reserve(200);
      for (int i = 0; i < 200; ++i) {
        futures.push_back(pool.submit([&counter] { ++counter; }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(counter.load(), 8 * 200);
}

TEST(ThreadPool, TryRunOneExecutesQueuedTask) {
  ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  auto blocker = pool.submit([&started, &release] {
    started = true;
    while (!release.load()) std::this_thread::yield();
  });
  // Only submit more work once the single worker is provably wedged inside
  // the blocker; otherwise try_run_one below could pop the blocker itself
  // and spin forever on the calling thread.
  while (!started.load()) std::this_thread::yield();
  std::atomic<int> counter{0};
  auto queued = pool.submit([&counter] { ++counter; });
  EXPECT_TRUE(pool.try_run_one());
  EXPECT_EQ(counter.load(), 1);
  EXPECT_FALSE(pool.try_run_one());
  release = true;
  blocker.get();
  queued.get();
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::array<std::array<std::atomic<int>, 8>, 8> hits{};
  // More outer iterations than workers, each spawning an inner
  // parallel_for: without caller-helping this wedges the pool.
  parallel_for(pool, 0, 8, [&](std::size_t i) {
    parallel_for(pool, 0, 8, [&](std::size_t j) { ++hits[i][j]; });
  });
  for (auto& row : hits) {
    for (auto& h : row) EXPECT_EQ(h.load(), 1);
  }
}

TEST(Timer, MeasuresElapsed) {
  Timer timer;
  const double t0 = timer.seconds();
  EXPECT_GE(t0, 0.0);
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GT(sink, 0.0);
  EXPECT_GE(timer.seconds(), t0);
  timer.reset();
  EXPECT_LT(timer.seconds(), 1.0);
}

}  // namespace
}  // namespace lrb

namespace lrb {
namespace {

TEST(Rng, ParetoTailAndSupport) {
  Rng rng(47);
  OnlineStats stats;
  double biggest = 0;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.pareto(2.0, 1.0);
    ASSERT_GE(v, 1.0);
    stats.add(std::min(v, 1e6));
    biggest = std::max(biggest, v);
  }
  // Mean of Pareto(2, 1) is alpha/(alpha-1) = 2.
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
  // Heavy tail: some sample far above the mean.
  EXPECT_GT(biggest, 50.0);
}

TEST(Rng, ParetoShapeControlsTail) {
  Rng rng(53);
  double heavy_max = 0, light_max = 0;
  for (int i = 0; i < 50000; ++i) {
    heavy_max = std::max(heavy_max, rng.pareto(1.1, 1.0));
    light_max = std::max(light_max, rng.pareto(4.0, 1.0));
  }
  EXPECT_GT(heavy_max, 20 * light_max);
}

}  // namespace
}  // namespace lrb

#include <cstdlib>
#include <filesystem>
#include <fstream>

namespace lrb {
namespace {

TEST(Table, CsvFileRoundTrip) {
  // The bench harness writes tables as CSV files (LRB_CSV_DIR); verify a
  // written file parses back line-for-line.
  Table t({"n", "time"});
  t.row().add(std::int64_t{1024}).add(3.5);
  t.row().add(std::int64_t{2048}).add(7.25);
  const auto path = std::filesystem::temp_directory_path() / "lrb_table.csv";
  {
    std::ofstream out(path);
    t.print_csv(out);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "n,time");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1024,3.5");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "2048,7.25");
  EXPECT_FALSE(std::getline(in, line));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace lrb
