// Tests for GREEDY (SPAA'03 §2) and the Graham/LPT baselines, including the
// Theorem 1 guarantees: ratio <= 2 - 1/m against the exact optimum, Lemma
// 1's G1 <= OPT bound, and the tight adversarial family.

#include <gtest/gtest.h>

#include <algorithm>

#include "algo/exact.h"
#include "algo/greedy.h"
#include "algo/lpt.h"
#include "core/generators.h"
#include "core/lower_bounds.h"

namespace lrb {
namespace {

TEST(Lpt, PerfectSplitWhenGreedyOrderAllows) {
  // {4,3,3,2} on 2 procs -> 6/6.
  const auto inst = make_instance({4, 3, 3, 2}, {0, 0, 0, 0}, 2);
  EXPECT_EQ(lpt_schedule(inst).makespan, 6);
}

TEST(Lpt, ClassicSuboptimalExample) {
  // {3,3,2,2,2} on 2 procs: OPT = 6 but LPT commits to 3|3 and ends at 7 -
  // the canonical witness that LPT is not exact (ratio 7/6 = 4/3 - 1/(3*2)).
  const auto inst = make_instance({3, 3, 2, 2, 2}, {0, 0, 0, 0, 0}, 2);
  EXPECT_EQ(lpt_schedule(inst).makespan, 7);
}

TEST(Lpt, RespectsKnownApproximationBound) {
  GeneratorOptions opt;
  opt.num_jobs = 40;
  opt.num_procs = 4;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto inst = random_instance(opt, seed);
    const auto result = lpt_schedule(inst);
    const Size lb = std::max(average_load_bound(inst), max_job_bound(inst));
    EXPECT_LE(static_cast<double>(result.makespan),
              (4.0 / 3.0) * static_cast<double>(lb) + 1.0)
        << "seed " << seed;
  }
}

TEST(ListSchedule, SingleProcessorSumsEverything) {
  const auto inst = make_instance({4, 1, 7}, {0, 0, 0}, 1);
  std::vector<JobId> order{2, 0, 1};
  EXPECT_EQ(list_schedule(inst, order).makespan, 12);
}

TEST(Greedy, ZeroBudgetIsIdentity) {
  const auto inst = make_instance({8, 2, 5}, {0, 0, 1}, 3);
  const auto result = greedy_rebalance(inst, 0);
  EXPECT_EQ(result.assignment, inst.initial);
  EXPECT_EQ(result.moves, 0);
  EXPECT_EQ(result.makespan, 10);
}

TEST(Greedy, NeverExceedsMoveBudget) {
  GeneratorOptions opt;
  opt.num_jobs = 60;
  opt.num_procs = 6;
  opt.placement = PlacementPolicy::kHotspot;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto inst = random_instance(opt, seed);
    for (std::int64_t k : {0, 1, 3, 10, 60, 200}) {
      const auto result = greedy_rebalance(inst, k);
      EXPECT_LE(result.moves, k);
      EXPECT_FALSE(validate(inst, result.assignment).has_value());
    }
  }
}

TEST(Greedy, MakespanBracketedByCertifiedBounds) {
  // Any feasible k-move solution is >= the certified lower bound, and
  // Theorem 1 caps GREEDY at (2 - 1/m) * OPT <= (2 - 1/m) * initial.
  GeneratorOptions opt;
  opt.num_jobs = 50;
  opt.num_procs = 5;
  for (auto placement : {PlacementPolicy::kRandom, PlacementPolicy::kHotspot,
                         PlacementPolicy::kSingleProc}) {
    opt.placement = placement;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const auto inst = random_instance(opt, seed);
      const auto result = greedy_rebalance(inst, 10);
      EXPECT_GE(result.makespan, combined_lower_bound(inst, 10));
      EXPECT_LE(static_cast<double>(result.makespan),
                (2.0 - 1.0 / 5.0) * static_cast<double>(inst.initial_makespan()));
    }
  }
}

TEST(Greedy, G1IsALowerBoundOnOpt) {
  // Lemma 1: the max load after Step 1's removals is <= OPT.
  GeneratorOptions opt;
  opt.num_jobs = 10;
  opt.num_procs = 3;
  opt.max_size = 20;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const auto inst = random_instance(opt, seed);
    for (std::int64_t k : {1, 2, 4}) {
      GreedyStats stats;
      (void)greedy_rebalance(inst, k, GreedyOrder::kLargestFirst, &stats);
      ExactOptions exact_opt;
      exact_opt.max_moves = k;
      const auto exact = exact_rebalance(inst, exact_opt);
      ASSERT_TRUE(exact.proven_optimal);
      EXPECT_LE(stats.g1, exact.best.makespan) << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(Greedy, Theorem1RatioAgainstExactOptimum) {
  // G2 <= (2 - 1/m) * OPT on every instance (Theorem 1 upper bound).
  GeneratorOptions opt;
  opt.num_jobs = 11;
  opt.num_procs = 3;
  opt.max_size = 25;
  for (auto placement : {PlacementPolicy::kRandom, PlacementPolicy::kHotspot,
                         PlacementPolicy::kSingleProc}) {
    opt.placement = placement;
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
      const auto inst = random_instance(opt, seed);
      for (std::int64_t k : {1, 3, 6}) {
        ExactOptions exact_opt;
        exact_opt.max_moves = k;
        const auto exact = exact_rebalance(inst, exact_opt);
        ASSERT_TRUE(exact.proven_optimal);
        for (auto order : {GreedyOrder::kAsRemoved, GreedyOrder::kLargestFirst,
                           GreedyOrder::kSmallestFirst}) {
          const auto result = greedy_rebalance(inst, k, order);
          const double bound =
              (2.0 - 1.0 / static_cast<double>(inst.num_procs)) *
              static_cast<double>(exact.best.makespan);
          EXPECT_LE(static_cast<double>(result.makespan), bound + 1e-9)
              << "seed=" << seed << " k=" << k;
        }
      }
    }
  }
}

TEST(Greedy, TightFamilyAchievesWorstCaseRatio) {
  // Theorem 1 tightness: on the adversarial family, the smallest-first
  // reinsertion order reproduces a makespan of 2m - 1 while OPT = m.
  for (ProcId m : {ProcId{2}, ProcId{3}, ProcId{5}, ProcId{8}}) {
    const auto family = greedy_tight_instance(m);
    const auto result =
        greedy_rebalance(family.instance, family.k, GreedyOrder::kSmallestFirst);
    EXPECT_EQ(result.makespan, 2 * static_cast<Size>(m) - 1) << "m=" << m;
    const double ratio = static_cast<double>(result.makespan) /
                         static_cast<double>(family.opt);
    EXPECT_NEAR(ratio, 2.0 - 1.0 / static_cast<double>(m), 1e-12);
  }
}

TEST(Greedy, StatsReportRemovedCount) {
  const auto inst = make_instance({5, 4, 3}, {0, 0, 0}, 2);
  GreedyStats stats;
  (void)greedy_rebalance(inst, 2, GreedyOrder::kLargestFirst, &stats);
  EXPECT_EQ(stats.removed, 2);
  // After removing 5 and 4 from P0, G1 = 3.
  EXPECT_EQ(stats.g1, 3);
}

TEST(Greedy, KLargerThanJobsStopsGracefully) {
  const auto inst = make_instance({5, 4, 3}, {0, 0, 0}, 2);
  const auto result = greedy_rebalance(inst, 100);
  EXPECT_FALSE(validate(inst, result.assignment).has_value());
  // With unlimited moves greedy reduces to list scheduling: 7/5 split.
  EXPECT_LE(result.makespan, 7);
}

TEST(Greedy, EqualLoadsNoOpportunity) {
  const auto inst = make_instance({3, 3, 3}, {0, 1, 2}, 3);
  const auto result = greedy_rebalance(inst, 2);
  EXPECT_EQ(result.makespan, 3);
}

}  // namespace
}  // namespace lrb
