// Unit and property tests for the knapsack toolkit.

#include <gtest/gtest.h>

#include <limits>
#include <numeric>
#include <vector>

#include "core/generators.h"
#include "knapsack/knapsack.h"
#include "util/rng.h"

namespace lrb {
namespace {

Cost brute_force_best(std::span<const KnapsackItem> items, Size capacity) {
  const auto n = items.size();
  Cost best = 0;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    Size size = 0;
    Cost value = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask >> i & 1u) {
        size += items[i].size;
        value += items[i].value;
      }
    }
    if (size <= capacity) best = std::max(best, value);
  }
  return best;
}

std::vector<KnapsackItem> random_items(Rng& rng, std::size_t n, Size max_size,
                                       Cost max_value) {
  std::vector<KnapsackItem> items(n);
  for (auto& item : items) {
    item.size = rng.uniform_int(0, max_size);
    item.value = rng.uniform_int(0, max_value);
  }
  return items;
}

TEST(KnapsackExact, EmptyAndZeroCapacity) {
  EXPECT_EQ(knapsack_exact({}, 10).value, 0);
  const std::vector<KnapsackItem> items{{5, 3}, {0, 7}};
  const auto sol = knapsack_exact(items, 0);
  EXPECT_EQ(sol.value, 7);  // only the zero-size item fits
  EXPECT_EQ(sol.size, 0);
}

TEST(KnapsackExact, TextbookInstance) {
  const std::vector<KnapsackItem> items{{2, 3}, {3, 4}, {4, 5}, {5, 6}};
  const auto sol = knapsack_exact(items, 5);
  EXPECT_EQ(sol.value, 7);  // {2,3} + {3,4}
  EXPECT_EQ(sol.size, 5);
  EXPECT_EQ(sol.chosen, (std::vector<std::size_t>{0, 1}));
}

TEST(KnapsackExact, MatchesBruteForceRandomized) {
  Rng rng(404);
  for (int trial = 0; trial < 50; ++trial) {
    const auto items = random_items(rng, 10, 12, 20);
    const Size cap = rng.uniform_int(0, 40);
    const auto sol = knapsack_exact(items, cap);
    EXPECT_EQ(sol.value, brute_force_best(items, cap)) << "trial " << trial;
    // Reported value/size must match the chosen set.
    Size size = 0;
    Cost value = 0;
    for (std::size_t i : sol.chosen) {
      size += items[i].size;
      value += items[i].value;
    }
    EXPECT_EQ(size, sol.size);
    EXPECT_EQ(value, sol.value);
    EXPECT_LE(size, cap);
  }
}

TEST(KnapsackGreedy, NeverExceedsCapacityAndIsConsistent) {
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const auto items = random_items(rng, 12, 10, 15);
    const Size cap = rng.uniform_int(0, 30);
    const auto sol = knapsack_greedy(items, cap);
    EXPECT_LE(sol.size, cap);
    EXPECT_LE(sol.value, brute_force_best(items, cap));
  }
}

TEST(KnapsackSizeRelaxed, ValueDominatesExactWithinRelaxedSize) {
  Rng rng(23);
  for (int trial = 0; trial < 40; ++trial) {
    const auto items = random_items(rng, 10, 50, 20);
    const Size cap = rng.uniform_int(1, 120);
    const double eps = 0.25;
    const auto relaxed = knapsack_size_relaxed(items, cap, eps);
    const auto exact = knapsack_exact(items, cap);
    EXPECT_GE(relaxed.value, exact.value) << "trial " << trial;
    EXPECT_LE(static_cast<double>(relaxed.size),
              (1.0 + eps) * static_cast<double>(cap) + 1e-9)
        << "trial " << trial;
  }
}

TEST(KnapsackSizeRelaxed, ZeroCapacityKeepsZeroSizeItems) {
  const std::vector<KnapsackItem> items{{3, 9}, {0, 2}, {0, 5}};
  const auto sol = knapsack_size_relaxed(items, 0, 0.5);
  EXPECT_EQ(sol.value, 7);
  EXPECT_EQ(sol.size, 0);
}

TEST(KnapsackAuto, SmallUsesExact) {
  const std::vector<KnapsackItem> items{{2, 3}, {3, 4}, {4, 5}};
  const auto sol = knapsack_auto(items, 5, 0.1);
  EXPECT_EQ(sol.value, 7);
  EXPECT_LE(sol.size, 5);
}

TEST(KnapsackAuto, HugeCapacityFallsBackToRelaxed) {
  std::vector<KnapsackItem> items(40);
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i] = {static_cast<Size>(1'000'000 + i), static_cast<Cost>(i + 1)};
  }
  // Capacity too large for the exact table at the default cell cap.
  const Size cap = 20'000'000;
  const auto sol = knapsack_auto(items, cap, 0.1);
  EXPECT_GT(sol.value, 0);
  EXPECT_LE(static_cast<double>(sol.size), 1.1 * static_cast<double>(cap) + 1);
}

TEST(KnapsackAuto, CellCountOverflowRoutesToRelaxed) {
  // (capacity + 1) * n wraps in 64-bit arithmetic: with the historical
  // unchecked product this aliased into the "small" range and tried to
  // allocate an impossible exact DP table. Must route to the relaxed DP
  // and terminate quickly with a feasible answer.
  std::vector<KnapsackItem> items(64);
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i] = {static_cast<Size>(1) << 40, static_cast<Cost>(i + 1)};
  }
  const Size cap = std::numeric_limits<Size>::max() / 2;
  // Sanity: the wrapped product really is "small" (the bug precondition).
  const std::size_t wrapped =
      (static_cast<std::size_t>(cap) + 1) * items.size();
  ASSERT_LE(wrapped, std::size_t{1} << 24);
  const auto sol = knapsack_auto(items, cap, 0.5);
  // Everything fits under cap; the relaxed DP must keep all items.
  Cost total = 0;
  for (const auto& item : items) total += item.value;
  EXPECT_EQ(sol.value, total);
}

TEST(KnapsackScratchTest, ReusedScratchMatchesScratchFree) {
  Rng rng(771);
  KnapsackScratch scratch;
  for (int trial = 0; trial < 40; ++trial) {
    const auto items = random_items(rng, 12, 30, 50);
    const Size cap = rng.uniform_int(0, Size{80});
    const auto plain = knapsack_exact(items, cap);
    const auto reused = knapsack_exact(items, cap, &scratch);
    EXPECT_EQ(plain.value, reused.value);
    EXPECT_EQ(plain.size, reused.size);
    EXPECT_EQ(plain.chosen, reused.chosen);
    const auto plain_rel = knapsack_size_relaxed(items, cap, 0.25);
    const auto reused_rel = knapsack_size_relaxed(items, cap, 0.25, &scratch);
    EXPECT_EQ(plain_rel.value, reused_rel.value);
    EXPECT_EQ(plain_rel.chosen, reused_rel.chosen);
  }
}

TEST(KnapsackScratchTest, BitPackedTakeMatchesBruteForceWideCapacity) {
  // Capacities straddling the 64-bit word boundaries of the packed take
  // matrix (63, 64, 65, ...) exercise the bit indexing.
  Rng rng(772);
  KnapsackScratch scratch;
  for (Size cap = 60; cap <= 70; ++cap) {
    const auto items = random_items(rng, 10, 25, 40);
    const auto sol = knapsack_exact(items, cap, &scratch);
    EXPECT_EQ(sol.value, brute_force_best(items, cap));
    Size size = 0;
    for (const std::size_t i : sol.chosen) size += items[i].size;
    EXPECT_EQ(size, sol.size);
    EXPECT_LE(size, cap);
  }
}

}  // namespace
}  // namespace lrb
