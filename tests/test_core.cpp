// Unit tests for src/core: instances, assignments, generators, lower bounds
// and serialization.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>

#include "core/assignment.h"
#include "core/generators.h"
#include "core/instance.h"
#include "core/io.h"
#include "core/lower_bounds.h"

namespace lrb {
namespace {

Instance small_fixture() {
  // P0: {8, 2}, P1: {5}, P2: {} -> loads {10, 5, 0}.
  return make_instance({8, 2, 5}, {0, 0, 1}, 3);
}

TEST(Instance, Accessors) {
  const auto inst = small_fixture();
  EXPECT_EQ(inst.num_jobs(), 3u);
  EXPECT_EQ(inst.num_procs, 3u);
  EXPECT_EQ(inst.total_size(), 15);
  EXPECT_EQ(inst.max_job(), 8);
  EXPECT_TRUE(inst.unit_costs());
  EXPECT_EQ(inst.initial_loads(), (std::vector<Size>{10, 5, 0}));
  EXPECT_EQ(inst.initial_makespan(), 10);
}

TEST(Instance, JobsByProc) {
  const auto inst = small_fixture();
  const auto by_proc = inst.jobs_by_proc();
  ASSERT_EQ(by_proc.size(), 3u);
  EXPECT_EQ(by_proc[0], (std::vector<JobId>{0, 1}));
  EXPECT_EQ(by_proc[1], (std::vector<JobId>{2}));
  EXPECT_TRUE(by_proc[2].empty());
}

TEST(Instance, ValidateRejectsBadShapes) {
  Instance inst = small_fixture();
  inst.move_costs.pop_back();
  EXPECT_TRUE(validate(inst).has_value());

  inst = small_fixture();
  inst.initial[0] = 3;  // out of range
  EXPECT_TRUE(validate(inst).has_value());

  inst = small_fixture();
  inst.sizes[1] = -1;
  EXPECT_TRUE(validate(inst).has_value());

  inst = small_fixture();
  inst.num_procs = 0;
  EXPECT_TRUE(validate(inst).has_value());

  EXPECT_FALSE(validate(small_fixture()).has_value());
}

TEST(Assignment, LoadsMakespanMovesCost) {
  const auto inst = small_fixture();
  const Assignment a{2, 0, 1};  // job 0 moved to P2
  EXPECT_EQ(loads(inst, a), (std::vector<Size>{2, 5, 8}));
  EXPECT_EQ(makespan(inst, a), 8);
  EXPECT_EQ(moves_used(inst, a), 1);
  EXPECT_EQ(relocation_cost(inst, a), 1);
}

TEST(Assignment, CostUsesPerJobCosts) {
  auto inst = make_instance({8, 2, 5}, {7, 3, 2}, {0, 0, 1}, 3);
  const Assignment a{2, 2, 1};
  EXPECT_EQ(relocation_cost(inst, a), 10);  // jobs 0 and 1 moved
  EXPECT_EQ(moves_used(inst, a), 2);
}

TEST(Assignment, ValidateChecksShape) {
  const auto inst = small_fixture();
  EXPECT_TRUE(validate(inst, Assignment{0, 0}).has_value());
  EXPECT_TRUE(validate(inst, Assignment{0, 0, 5}).has_value());
  EXPECT_FALSE(validate(inst, Assignment{0, 0, 1}).has_value());
}

TEST(Assignment, NoMoveResult) {
  const auto inst = small_fixture();
  const auto r = no_move_result(inst);
  EXPECT_EQ(r.makespan, 10);
  EXPECT_EQ(r.moves, 0);
  EXPECT_EQ(r.cost, 0);
  EXPECT_EQ(r.assignment, inst.initial);
}

TEST(Generators, RandomInstanceDeterministicInSeed) {
  GeneratorOptions opt;
  opt.num_jobs = 200;
  opt.num_procs = 7;
  const auto a = random_instance(opt, 123);
  const auto b = random_instance(opt, 123);
  const auto c = random_instance(opt, 124);
  EXPECT_EQ(a.sizes, b.sizes);
  EXPECT_EQ(a.initial, b.initial);
  EXPECT_NE(a.sizes == c.sizes && a.initial == c.initial, true);
}

TEST(Generators, SizesRespectBounds) {
  GeneratorOptions opt;
  opt.num_jobs = 500;
  opt.min_size = 10;
  opt.max_size = 20;
  for (auto dist : {SizeDistribution::kUniform, SizeDistribution::kZipf}) {
    opt.size_dist = dist;
    const auto inst = random_instance(opt, 5);
    for (Size s : inst.sizes) {
      EXPECT_GE(s, 10);
      EXPECT_LE(s, 20);
    }
  }
}

TEST(Generators, UnitDistributionAllOnes) {
  GeneratorOptions opt;
  opt.size_dist = SizeDistribution::kUnit;
  opt.num_jobs = 50;
  const auto inst = random_instance(opt, 9);
  for (Size s : inst.sizes) EXPECT_EQ(s, 1);
}

TEST(Generators, SingleProcPlacementPilesUp) {
  GeneratorOptions opt;
  opt.placement = PlacementPolicy::kSingleProc;
  opt.num_jobs = 30;
  opt.num_procs = 4;
  const auto inst = random_instance(opt, 3);
  for (ProcId p : inst.initial) EXPECT_EQ(p, 0u);
}

TEST(Generators, HotspotConcentratesLoad) {
  GeneratorOptions opt;
  opt.placement = PlacementPolicy::kHotspot;
  opt.hotspot_fraction = 0.1;
  opt.hotspot_mass = 0.9;
  opt.num_jobs = 2000;
  opt.num_procs = 10;
  const auto inst = random_instance(opt, 21);
  const auto l = inst.initial_loads();
  // Hot processor 0 should dwarf the mean of the rest.
  const Size rest =
      std::accumulate(l.begin() + 1, l.end(), Size{0}) / (10 - 1);
  EXPECT_GT(l[0], 3 * rest);
}

TEST(Generators, BalancedPlacementIsNearlyFlat) {
  GeneratorOptions opt;
  opt.placement = PlacementPolicy::kBalanced;
  opt.num_jobs = 500;
  opt.num_procs = 5;
  const auto inst = random_instance(opt, 8);
  const auto l = inst.initial_loads();
  const Size mx = *std::max_element(l.begin(), l.end());
  const Size mn = *std::min_element(l.begin(), l.end());
  EXPECT_LE(mx - mn, inst.max_job());
}

TEST(Generators, CostModels) {
  GeneratorOptions opt;
  opt.num_jobs = 100;
  opt.cost_model = CostModel::kProportional;
  auto inst = random_instance(opt, 2);
  for (std::size_t j = 0; j < inst.num_jobs(); ++j) {
    EXPECT_EQ(inst.move_costs[j], std::max<Cost>(1, inst.sizes[j]));
  }
  opt.cost_model = CostModel::kTwoValued;
  opt.two_value_p = 3;
  opt.two_value_q = 11;
  inst = random_instance(opt, 2);
  for (Cost c : inst.move_costs) EXPECT_TRUE(c == 3 || c == 11);
  opt.cost_model = CostModel::kInverse;
  inst = random_instance(opt, 2);
  const Size mx = inst.max_job();
  for (std::size_t j = 0; j < inst.num_jobs(); ++j) {
    EXPECT_EQ(inst.move_costs[j], mx - inst.sizes[j] + 1);
  }
}

TEST(Generators, GreedyTightFamilyShape) {
  const auto family = greedy_tight_instance(4);
  const auto& inst = family.instance;
  EXPECT_EQ(inst.num_procs, 4u);
  EXPECT_EQ(inst.num_jobs(), 1u + 4u * 3u);
  EXPECT_EQ(inst.max_job(), 4);
  EXPECT_EQ(family.k, 3);
  EXPECT_EQ(family.opt, 4);
  EXPECT_EQ(inst.initial_makespan(), 2 * 4 - 1);
  // OPT is witnessed by moving the three unit jobs off processor 0.
  Assignment witness = inst.initial;
  int moved = 0;
  for (std::size_t j = 1; j < inst.num_jobs() && moved < 3; ++j) {
    if (inst.initial[j] == 0) {
      witness[j] = static_cast<ProcId>(1 + moved);
      ++moved;
    }
  }
  EXPECT_EQ(makespan(inst, witness), family.opt);
  EXPECT_EQ(moves_used(inst, witness), family.k);
}

TEST(Generators, PartitionTightFamilyShape) {
  const auto family = partition_tight_instance();
  EXPECT_EQ(family.instance.initial_makespan(), 3);
  EXPECT_EQ(family.opt, 2);
  // Witness: move the size-1 job on P0 over to P1.
  Assignment witness{1, 0, 1};
  EXPECT_EQ(makespan(family.instance, witness), 2);
  EXPECT_EQ(moves_used(family.instance, witness), 1);
}

TEST(Generators, UnitInstanceCounts) {
  const auto inst = unit_instance({3, 0, 5});
  EXPECT_EQ(inst.num_jobs(), 8u);
  EXPECT_EQ(inst.initial_loads(), (std::vector<Size>{3, 0, 5}));
}

TEST(LowerBounds, AverageAndMaxJob) {
  const auto inst = small_fixture();
  EXPECT_EQ(average_load_bound(inst), 5);  // ceil(15/3)
  EXPECT_EQ(max_job_bound(inst), 8);
}

TEST(LowerBounds, KRemovalMatchesLemma1OnFixture) {
  const auto inst = small_fixture();
  // k=0: initial makespan 10. k=1: remove 8 -> loads {2,5,0} -> 5.
  EXPECT_EQ(k_removal_bound(inst, 0), 10);
  EXPECT_EQ(k_removal_bound(inst, 1), 5);
  EXPECT_EQ(k_removal_bound(inst, 2), 2);
  EXPECT_EQ(k_removal_bound(inst, 100), 0);
}

TEST(LowerBounds, KRemovalIsMinOverAllDeletions) {
  // Brute-force check on random small instances: greedy removal achieves
  // the minimum max-load over all ways of deleting k jobs (Lemma 1).
  GeneratorOptions opt;
  opt.num_jobs = 8;
  opt.num_procs = 3;
  opt.max_size = 9;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const auto inst = random_instance(opt, seed);
    for (std::int64_t k = 0; k <= 3; ++k) {
      Size best = kInfSize;
      const auto n = inst.num_jobs();
      for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
        if (std::popcount(mask) != k) continue;
        std::vector<Size> load(inst.num_procs, 0);
        for (std::size_t j = 0; j < n; ++j) {
          if ((mask >> j & 1u) == 0) load[inst.initial[j]] += inst.sizes[j];
        }
        best = std::min(best, *std::max_element(load.begin(), load.end()));
      }
      EXPECT_EQ(k_removal_bound(inst, k), best)
          << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(LowerBounds, BudgetRemovalBasics) {
  const auto inst = small_fixture();  // unit costs
  EXPECT_EQ(budget_removal_bound(inst, 0), 10);
  // Budget 1 = one (fractional) unit of cost: trimming P0 by 8 costs
  // 8/10-ish fractionally, so the bound drops well below 10.
  EXPECT_LE(budget_removal_bound(inst, 1), 5);
  EXPECT_GE(budget_removal_bound(inst, 1), 0);
  EXPECT_EQ(budget_removal_bound(inst, 100), 0);
}

TEST(LowerBounds, BudgetRemovalNeverExceedsTrueOpt) {
  GeneratorOptions opt;
  opt.num_jobs = 10;
  opt.num_procs = 3;
  opt.cost_model = CostModel::kUniform;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto inst = random_instance(opt, seed);
    // The bound at an enormous budget is <= the fully-relaxed LPT result.
    EXPECT_LE(budget_removal_bound(inst, 1'000'000), inst.initial_makespan());
  }
}

TEST(LowerBounds, CombinedDominatesParts) {
  const auto inst = small_fixture();
  for (std::int64_t k = 0; k <= 3; ++k) {
    const Size combined = combined_lower_bound(inst, k);
    EXPECT_GE(combined, average_load_bound(inst));
    EXPECT_GE(combined, max_job_bound(inst));
    EXPECT_GE(combined, k_removal_bound(inst, k));
  }
}

TEST(Io, InstanceRoundTrip) {
  GeneratorOptions opt;
  opt.num_jobs = 64;
  opt.num_procs = 5;
  opt.cost_model = CostModel::kUniform;
  const auto inst = random_instance(opt, 77);
  const std::string text = instance_to_string(inst);
  std::string error;
  const auto parsed = instance_from_string(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->sizes, inst.sizes);
  EXPECT_EQ(parsed->move_costs, inst.move_costs);
  EXPECT_EQ(parsed->initial, inst.initial);
  EXPECT_EQ(parsed->num_procs, inst.num_procs);
}

TEST(Io, CommentsAndWhitespaceTolerated) {
  const std::string text =
      "# a header comment\n"
      "lrb-instance 1\n"
      "procs 2\n"
      "jobs 2   # two jobs\n"
      "5 1 0\n"
      "7 2 1\n";
  std::string error;
  const auto parsed = instance_from_string(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->sizes, (std::vector<Size>{5, 7}));
}

TEST(Io, RejectsMalformed) {
  std::string error;
  EXPECT_FALSE(instance_from_string("nonsense", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(instance_from_string("lrb-instance 2\nprocs 1\njobs 0\n")
                   .has_value());
  EXPECT_FALSE(
      instance_from_string("lrb-instance 1\nprocs 1\njobs 1\n5 1\n").has_value());
  // Out-of-range initial processor is caught by validate().
  EXPECT_FALSE(
      instance_from_string("lrb-instance 1\nprocs 1\njobs 1\n5 1 3\n").has_value());
}

TEST(Io, AssignmentRoundTrip) {
  const Assignment a{0, 2, 1, 1};
  std::ostringstream oss;
  write_assignment(oss, a);
  std::istringstream iss(oss.str());
  const auto parsed = read_assignment(iss);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, a);
}

}  // namespace
}  // namespace lrb
