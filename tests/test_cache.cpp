// Property battery for the canonicalizing solution cache (src/cache/,
// docs/caching.md): canonicalization is idempotent and invariant under
// job/processor relabeling, fingerprints separate canonically distinct
// instances, permutation mapping round-trips exactly, the sharded LRU
// evicts in recency order with exact byte accounting, single-flight
// collapses concurrent identical misses to one solve, and the
// cache-enabled engine stays byte-identical to cached_serial_reference.
//
// Suite names all contain `Cache` so the thread-sanitize CI job picks the
// concurrency tests up via its -R filter.

#include <atomic>
#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/canonical.h"
#include "cache/solution_cache.h"
#include "core/assignment.h"
#include "core/generators.h"
#include "core/instance.h"
#include "engine/batch_solver.h"
#include "obs/metrics.h"
#include "solver/registry.h"
#include "util/rng.h"

namespace lrb {
namespace {

using cache::CanonicalInstance;
using cache::Fingerprint;
using cache::SolutionCache;
using solver::BackendId;

Instance corpus_instance(std::size_t index) {
  return mixed_corpus_instance(index, /*seed=*/0xabcdefULL);
}

/// Relabels jobs and processors: job_perm[j] / proc_perm[p] are the NEW ids
/// of old job j / old processor p. The relabeled instance describes the
/// same problem.
Instance relabel(const Instance& in, const std::vector<JobId>& job_perm,
                 const std::vector<ProcId>& proc_perm) {
  Instance out;
  out.num_procs = in.num_procs;
  out.sizes.resize(in.num_jobs());
  out.move_costs.resize(in.num_jobs());
  out.initial.resize(in.num_jobs());
  for (std::size_t j = 0; j < in.num_jobs(); ++j) {
    out.sizes[job_perm[j]] = in.sizes[j];
    out.move_costs[job_perm[j]] = in.move_costs[j];
    out.initial[job_perm[j]] = proc_perm[in.initial[j]];
  }
  return out;
}

std::vector<JobId> random_job_perm(std::size_t n, Rng& rng) {
  std::vector<JobId> perm(n);
  std::iota(perm.begin(), perm.end(), JobId{0});
  shuffle(std::span<JobId>(perm), rng);
  return perm;
}

std::vector<ProcId> random_proc_perm(ProcId m, Rng& rng) {
  std::vector<ProcId> perm(m);
  std::iota(perm.begin(), perm.end(), ProcId{0});
  shuffle(std::span<ProcId>(perm), rng);
  return perm;
}

std::string canonical_key(const Instance& instance) {
  const CanonicalInstance canon = cache::canonicalize(instance);
  return cache::encode_cache_key(canon.instance, BackendId::kBestOf, /*k=*/7);
}

TEST(CacheCanonical, IdempotentAndIdentityOnCanonicalForm) {
  for (std::size_t index = 0; index < 24; ++index) {
    const Instance instance = corpus_instance(index);
    const CanonicalInstance canon = cache::canonicalize(instance);
    ASSERT_EQ(validate(canon.instance), std::nullopt);

    // Canonicalizing the canonical instance is the identity.
    const CanonicalInstance again = cache::canonicalize(canon.instance);
    EXPECT_EQ(again.instance.sizes, canon.instance.sizes);
    EXPECT_EQ(again.instance.move_costs, canon.instance.move_costs);
    EXPECT_EQ(again.instance.initial, canon.instance.initial);
    for (std::size_t j = 0; j < again.job_to_canonical.size(); ++j) {
      EXPECT_EQ(again.job_to_canonical[j], static_cast<JobId>(j));
    }
    for (ProcId p = 0; p < again.instance.num_procs; ++p) {
      EXPECT_EQ(again.proc_to_canonical[p], p);
    }

    // The recorded permutations are mutually inverse bijections.
    for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
      EXPECT_EQ(canon.job_from_canonical[canon.job_to_canonical[j]],
                static_cast<JobId>(j));
    }
    for (ProcId p = 0; p < instance.num_procs; ++p) {
      EXPECT_EQ(canon.proc_from_canonical[canon.proc_to_canonical[p]], p);
    }

    // Canonicalization permutes, never alters, the job population.
    EXPECT_EQ(canon.instance.total_size(), instance.total_size());
    EXPECT_EQ(canon.instance.initial_makespan(), instance.initial_makespan());
  }
}

TEST(CacheCanonical, InvariantUnderRelabeling) {
  Rng rng(0x1234);
  for (std::size_t index = 0; index < 24; ++index) {
    const Instance instance = corpus_instance(index);
    const std::string key = canonical_key(instance);
    const Fingerprint fp = cache::fingerprint(key);
    for (int trial = 0; trial < 4; ++trial) {
      const auto job_perm = random_job_perm(instance.num_jobs(), rng);
      const auto proc_perm = random_proc_perm(instance.num_procs, rng);
      const Instance shuffled = relabel(instance, job_perm, proc_perm);
      const std::string shuffled_key = canonical_key(shuffled);
      EXPECT_EQ(shuffled_key, key) << "instance " << index;
      EXPECT_EQ(cache::fingerprint(shuffled_key), fp);
    }
  }
}

TEST(CacheCanonical, FingerprintSeparatesDistinctInstances) {
  // Canonically distinct instances must get distinct fingerprints (128 bits
  // over ~100 keys: a collision here means the hash is broken, not unlucky).
  std::vector<std::pair<std::string, Fingerprint>> seen;
  for (std::size_t index = 0; index < 60; ++index) {
    const std::string key = canonical_key(corpus_instance(index));
    const Fingerprint fp = cache::fingerprint(key);
    for (const auto& [other_key, other_fp] : seen) {
      if (other_key != key) {
        EXPECT_FALSE(other_fp == fp) << "collision at index " << index;
      }
    }
    seen.emplace_back(key, fp);
  }
  // Solve parameters are part of the key: same instance, different k /
  // algo / eps must all be distinct.
  const CanonicalInstance canon =
      cache::canonicalize(corpus_instance(0));
  const auto key_of = [&](BackendId backend, std::int64_t k, double eps) {
    return cache::encode_cache_key(
        canon.instance, solver::SolverSpec(backend, {.eps = eps}), k);
  };
  EXPECT_NE(key_of(BackendId::kGreedy, 5, 1.0),
            key_of(BackendId::kMPartition, 5, 1.0));
  EXPECT_NE(key_of(BackendId::kGreedy, 5, 1.0),
            key_of(BackendId::kGreedy, 6, 1.0));
  EXPECT_NE(key_of(BackendId::kPtas, 5, 0.5),
            key_of(BackendId::kPtas, 5, 0.25));
}

TEST(CacheCanonical, MappingRoundTripsAndPreservesAccounting) {
  Rng rng(0x77);
  for (std::size_t index = 0; index < 16; ++index) {
    const Instance instance = corpus_instance(index);
    const CanonicalInstance canon = cache::canonicalize(instance);
    const std::int64_t k =
        std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                      instance.num_jobs() / 8));
    const RebalanceResult canonical =
        engine::solve_serial_reference(BackendId::kBestOf, canon.instance, k);
    const RebalanceResult mapped = cache::map_to_original(canon, canonical);

    // The mapped plan is a valid assignment of the ORIGINAL instance whose
    // exact accounting equals the canonical scalars: makespan, moves and
    // cost are invariant under relabeling.
    ASSERT_EQ(validate(instance, mapped.assignment), std::nullopt);
    EXPECT_EQ(makespan(instance, mapped.assignment), canonical.makespan);
    EXPECT_EQ(moves_used(instance, mapped.assignment), canonical.moves);
    EXPECT_EQ(relocation_cost(instance, mapped.assignment), canonical.cost);
    EXPECT_EQ(mapped.makespan, canonical.makespan);
    EXPECT_EQ(mapped.moves, canonical.moves);
    EXPECT_EQ(mapped.cost, canonical.cost);
    EXPECT_EQ(mapped.threshold, canonical.threshold);

    // Inverse mapping round-trips exactly.
    const Assignment back =
        cache::map_assignment_to_canonical(canon, mapped.assignment);
    EXPECT_EQ(back, canonical.assignment);
    (void)rng;
  }
}

TEST(CacheLru, EvictsInRecencyOrderWithExactByteAccounting) {
  obs::Registry registry;
  const Instance instance = corpus_instance(3);
  const CanonicalInstance canon = cache::canonicalize(instance);
  const RebalanceResult result = engine::solve_serial_reference(
      BackendId::kGreedy, canon.instance, 4);

  const auto key_for = [&](std::int64_t k) {
    return cache::encode_cache_key(canon.instance, BackendId::kGreedy, k);
  };
  const std::size_t per_entry = SolutionCache::entry_bytes(
      key_for(0).size(), result.assignment.size());

  cache::CacheOptions options;
  options.shards = 1;  // deterministic: one LRU list
  options.max_bytes = 3 * per_entry;
  options.metrics = &registry;
  SolutionCache cache(options);
  ASSERT_EQ(cache.shard_count(), 1u);

  const auto fp_for = [&](std::int64_t k) {
    return cache::fingerprint(key_for(k));
  };
  for (std::int64_t k = 0; k < 3; ++k) {
    cache.insert(fp_for(k), key_for(k), result);
  }
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.bytes(), 3 * per_entry);
  EXPECT_EQ(registry.gauge("cache.bytes").value(),
            static_cast<std::int64_t>(3 * per_entry));
  EXPECT_EQ(registry.gauge("cache.entries").value(), 3);

  // Touch key 0 so key 1 is now the LRU tail; the next insert evicts 1.
  EXPECT_TRUE(cache.lookup(fp_for(0), key_for(0)).has_value());
  cache.insert(fp_for(3), key_for(3), result);
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(registry.counter("cache.evictions").value(), 1u);
  EXPECT_FALSE(cache.lookup(fp_for(1), key_for(1)).has_value());
  EXPECT_TRUE(cache.lookup(fp_for(0), key_for(0)).has_value());
  EXPECT_TRUE(cache.lookup(fp_for(2), key_for(2)).has_value());
  EXPECT_TRUE(cache.lookup(fp_for(3), key_for(3)).has_value());

  // Re-inserting an existing key refreshes in place: no growth, no eviction.
  cache.insert(fp_for(3), key_for(3), result);
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.bytes(), 3 * per_entry);
  EXPECT_EQ(registry.counter("cache.evictions").value(), 1u);

  // An entry larger than the whole budget is refused, not thrashed in.
  cache::CacheOptions tiny;
  tiny.shards = 1;
  tiny.max_bytes = per_entry - 1;
  tiny.metrics = &registry;
  SolutionCache small(tiny);
  small.insert(fp_for(0), key_for(0), result);
  EXPECT_EQ(small.entries(), 0u);
  EXPECT_EQ(small.bytes(), 0u);
}

TEST(CacheLru, HitVerifiesFullKeyBytesNotJustTheFingerprint) {
  obs::Registry registry;
  cache::CacheOptions options;
  options.metrics = &registry;
  SolutionCache cache(options);

  const Instance instance = corpus_instance(5);
  const CanonicalInstance canon = cache::canonicalize(instance);
  const RebalanceResult result = engine::solve_serial_reference(
      BackendId::kGreedy, canon.instance, 2);
  const std::string key_a =
      cache::encode_cache_key(canon.instance, BackendId::kGreedy, 2);
  const std::string key_b =
      cache::encode_cache_key(canon.instance, BackendId::kMPartition, 2);
  const Fingerprint fp = cache::fingerprint(key_a);

  // Deliberately look key_b up under key_a's fingerprint (a simulated
  // 128-bit collision): the stored key bytes differ, so it must miss.
  cache.insert(fp, key_a, result);
  EXPECT_TRUE(cache.lookup(fp, key_a).has_value());
  EXPECT_FALSE(cache.lookup(fp, key_b).has_value());

  // Same collision against an in-flight leader: the prober is told to
  // solve uncached (no hit, no leadership, no blocking).
  const auto leader = cache.lookup_or_begin(cache::fingerprint(key_b), key_b);
  EXPECT_FALSE(leader.hit);
  EXPECT_TRUE(leader.leader);
  const auto collided = cache.lookup_or_begin(cache::fingerprint(key_b),
                                              key_a);
  EXPECT_FALSE(collided.hit);
  EXPECT_FALSE(collided.leader);
  cache.cancel(cache::fingerprint(key_b), key_b);
}

TEST(CacheSingleFlight, NoBlockProbeNeverWaitsOnALeader) {
  obs::Registry registry;
  cache::CacheOptions options;
  options.metrics = &registry;
  SolutionCache cache(options);

  const Instance instance = corpus_instance(6);
  const CanonicalInstance canon = cache::canonicalize(instance);
  const std::string key =
      cache::encode_cache_key(canon.instance, BackendId::kGreedy, 4);
  const Fingerprint fp = cache::fingerprint(key);

  const auto leader = cache.lookup_or_begin(fp, key);
  ASSERT_TRUE(leader.leader);

  // With a leader in flight, a kNoBlock probe for the SAME key must
  // return immediately with neither a hit nor leadership — the engine
  // depends on this to never park a pool worker on the cv.
  const auto bypass =
      cache.lookup_or_begin(fp, key, SolutionCache::WaitMode::kNoBlock);
  EXPECT_FALSE(bypass.hit);
  EXPECT_FALSE(bypass.leader);
  EXPECT_EQ(registry.counter("cache.single_flight_bypass").value(), 1u);
  EXPECT_EQ(registry.counter("cache.single_flight_waits").value(), 0u);

  // Once the leader publishes, kNoBlock probes hit like any other.
  cache.publish(fp, key,
                engine::solve_serial_reference(BackendId::kGreedy,
                                               canon.instance, 4));
  const auto hit =
      cache.lookup_or_begin(fp, key, SolutionCache::WaitMode::kNoBlock);
  EXPECT_TRUE(hit.hit);
}

TEST(CacheSingleFlight, ConcurrentIdenticalMissesSolveExactlyOnce) {
  obs::Registry registry;
  cache::CacheOptions options;
  options.metrics = &registry;
  SolutionCache cache(options);

  const Instance instance = corpus_instance(7);
  const CanonicalInstance canon = cache::canonicalize(instance);
  const std::string key =
      cache::encode_cache_key(canon.instance, BackendId::kBestOf, 5);
  const Fingerprint fp = cache::fingerprint(key);

  constexpr int kThreads = 16;
  constexpr int kRounds = 8;
  std::atomic<int> solves{0};
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    std::vector<RebalanceResult> results(kThreads);
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        ready.fetch_add(1);
        while (ready.load() < kThreads) {
        }
        const auto slot = static_cast<std::size_t>(t);
        for (;;) {
          auto probe = cache.lookup_or_begin(fp, key);
          if (probe.hit) {
            results[slot] = std::move(probe.result);
            return;
          }
          if (!probe.leader) continue;  // collision path: retry
          solves.fetch_add(1);
          const RebalanceResult solved = engine::solve_serial_reference(
              BackendId::kBestOf, canon.instance, 5);
          cache.publish(fp, key, solved);
          results[slot] = solved;
          return;
        }
      });
    }
    for (auto& thread : threads) thread.join();
    for (std::size_t t = 1; t < results.size(); ++t) {
      ASSERT_EQ(results[t].assignment, results[0].assignment);
    }
  }
  // The first round has exactly one leader; later rounds are pure hits.
  EXPECT_EQ(solves.load(), 1);
  EXPECT_EQ(registry.counter("cache.inserts").value(), 1u);
  EXPECT_GE(registry.counter("cache.hits").value(),
            static_cast<std::uint64_t>(kThreads * kRounds - 1));
}

TEST(CacheSingleFlight, CancelledLeaderPromotesAWaiter) {
  SolutionCache cache;
  const Instance instance = corpus_instance(9);
  const CanonicalInstance canon = cache::canonicalize(instance);
  const std::string key =
      cache::encode_cache_key(canon.instance, BackendId::kGreedy, 3);
  const Fingerprint fp = cache::fingerprint(key);

  auto first = cache.lookup_or_begin(fp, key);
  ASSERT_TRUE(first.leader);

  std::atomic<int> solves{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < 4; ++t) {
    waiters.emplace_back([&] {
      for (;;) {
        auto probe = cache.lookup_or_begin(fp, key);
        if (probe.hit) return;
        if (!probe.leader) continue;
        solves.fetch_add(1);
        cache.publish(fp, key, engine::solve_serial_reference(
                                   BackendId::kGreedy, canon.instance, 3));
        return;
      }
    });
  }
  // The original leader fails; exactly one waiter must take over and
  // everyone else must drain via its published result.
  cache.cancel(fp, key);
  for (auto& thread : waiters) thread.join();
  EXPECT_EQ(solves.load(), 1);
}

TEST(CacheEngine, CachedSolvesAreByteIdenticalColdAndWarm) {
  obs::Registry registry;
  engine::BatchOptions options;
  options.workers = 4;
  options.cache_bytes = std::size_t{8} << 20;
  options.metrics = &registry;
  engine::BatchSolver solver(options);
  ASSERT_TRUE(solver.cache_enabled());

  std::vector<Instance> instances;
  std::vector<std::int64_t> ks;
  for (std::size_t index = 0; index < 12; ++index) {
    instances.push_back(corpus_instance(index));
    ks.push_back(static_cast<std::int64_t>(index % 5) + 1);
  }
  const auto cold = solver.solve(instances, ks);
  const auto warm = solver.solve(instances, ks);
  ASSERT_EQ(cold.size(), instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const RebalanceResult want = engine::cached_serial_reference(
        options.spec, instances[i], ks[i]);
    EXPECT_EQ(cold[i].assignment, want.assignment) << "cold " << i;
    EXPECT_EQ(warm[i].assignment, want.assignment) << "warm " << i;
    EXPECT_EQ(cold[i].makespan, want.makespan);
    EXPECT_EQ(warm[i].moves, want.moves);
    EXPECT_EQ(warm[i].cost, want.cost);
    EXPECT_EQ(warm[i].threshold, want.threshold);
  }
  // The warm pass was served from cache: no new solves.
  EXPECT_EQ(registry.counter("engine.instances_solved").value(),
            instances.size());
  EXPECT_GE(registry.counter("cache.hits").value(), instances.size());
}

TEST(CacheEngine, RelabeledInstancesHitTheSameEntry) {
  obs::Registry registry;
  engine::BatchOptions options;
  options.workers = 2;
  options.cache_bytes = std::size_t{8} << 20;
  options.metrics = &registry;
  engine::BatchSolver solver(options);

  Rng rng(0x5150);
  const Instance instance = corpus_instance(11);
  const RebalanceResult original = solver.solve_one(instance, 6);
  EXPECT_EQ(registry.counter("engine.instances_solved").value(), 1u);

  for (int trial = 0; trial < 5; ++trial) {
    const auto job_perm = random_job_perm(instance.num_jobs(), rng);
    const auto proc_perm = random_proc_perm(instance.num_procs, rng);
    const Instance shuffled = relabel(instance, job_perm, proc_perm);
    const RebalanceResult got = solver.solve_one(shuffled, 6);
    // Same canonical entry (no extra solve), mapped back to the relabeled
    // instance's own labels — byte-identical to its serial reference.
    const RebalanceResult want = engine::cached_serial_reference(
        options.spec, shuffled, 6);
    EXPECT_EQ(got.assignment, want.assignment);
    EXPECT_EQ(got.makespan, original.makespan);
    EXPECT_EQ(got.moves, original.moves);
    EXPECT_EQ(got.cost, original.cost);
  }
  EXPECT_EQ(registry.counter("engine.instances_solved").value(), 1u);
  EXPECT_EQ(registry.counter("cache.hits").value(), 5u);
}

TEST(CacheEngine, BatchDedupSolvesIdenticalItemsOnce) {
  obs::Registry registry;
  engine::BatchOptions options;
  options.workers = 4;
  options.cache_bytes = std::size_t{8} << 20;
  options.metrics = &registry;
  engine::BatchSolver solver(options);

  const Instance instance = corpus_instance(2);
  constexpr std::size_t kCopies = 24;
  std::vector<engine::BatchSolver::TickItem> items(kCopies);
  for (auto& item : items) {
    item.instance = &instance;
    item.k = 4;
    item.spec = BackendId::kBestOf;
  }
  const auto results = solver.solve_items(items);
  ASSERT_EQ(results.size(), kCopies);
  const RebalanceResult want = engine::cached_serial_reference(
      BackendId::kBestOf, instance, 4);
  for (const auto& result : results) {
    EXPECT_EQ(result.assignment, want.assignment);
  }
  // One solve fanned out to all 24 replies.
  EXPECT_EQ(registry.counter("engine.instances_solved").value(), 1u);
}

TEST(CacheEngine, ConcurrentTicksSharingKeysNeverDeadlock) {
  // Regression for a wait-for cycle: a single-flight leader whose solve
  // enters a nested parallel_for help-drains the pool queue, and could
  // pop ANOTHER tick's probe task — which then parked on a different
  // key's leader, itself blocked the same way on the first key. Two
  // concurrent ticks sharing two duplicate keys could hang forever. The
  // engine now probes with WaitMode::kNoBlock, so this hammer — ticks
  // racing over the same key set from several threads, with every solve
  // forced through the nested intra-instance parallel path — must always
  // terminate, every reply byte-identical to the cached reference.
  obs::Registry registry;
  engine::BatchOptions options;
  options.workers = 2;
  options.cache_bytes = std::size_t{8} << 20;
  options.metrics = &registry;
  options.intra_parallel_min_jobs = 1;  // every solve help-drains
  engine::BatchSolver solver(options);

  std::vector<Instance> instances;
  std::vector<RebalanceResult> want;
  for (std::size_t index = 0; index < 4; ++index) {
    instances.push_back(corpus_instance(index));
    want.push_back(
        engine::cached_serial_reference(options.spec, instances.back(), 3));
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  std::atomic<int> ready{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      std::vector<engine::BatchSolver::TickItem> items(instances.size());
      for (int round = 0; round < kRounds; ++round) {
        // Each thread's tick covers the same keys, rotated so concurrent
        // ticks keep meeting each other's in-flight leaders.
        for (std::size_t i = 0; i < instances.size(); ++i) {
          const std::size_t pick =
              (i + static_cast<std::size_t>(t)) % instances.size();
          items[i].instance = &instances[pick];
          items[i].k = 3;
          items[i].spec = options.spec;
        }
        const auto results = solver.solve_items(items);
        for (std::size_t i = 0; i < items.size(); ++i) {
          const std::size_t pick =
              (i + static_cast<std::size_t>(t)) % instances.size();
          if (results[i].assignment != want[pick].assignment) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(CacheEngine, DedupKeysDistinguishAlgoAndPtasParameters) {
  // Satellite regression: a batch mixing per-item algorithm selections
  // over the SAME instance must not collapse into one cache entry.
  obs::Registry registry;
  engine::BatchOptions options;
  options.workers = 4;
  options.cache_bytes = std::size_t{8} << 20;
  options.metrics = &registry;
  engine::BatchSolver solver(options);

  const Instance instance = corpus_instance(6);
  using Item = engine::BatchSolver::TickItem;
  std::vector<Item> items;
  const auto add = [&](BackendId backend, Cost budget, double eps) {
    Item item;
    item.instance = &instance;
    item.k = 5;
    item.spec = solver::SolverSpec(backend, {.budget = budget, .eps = eps});
    items.push_back(item);
  };
  add(BackendId::kGreedy, kInfCost, 1.0);
  add(BackendId::kMPartition, kInfCost, 1.0);
  add(BackendId::kBestOf, kInfCost, 1.0);
  add(BackendId::kPtas, kInfCost, 0.5);
  add(BackendId::kPtas, kInfCost, 0.25);  // distinct eps: distinct key
  // Budget/eps knobs are irrelevant to greedy: normalized into the SAME key.
  add(BackendId::kGreedy, 123, 0.125);

  const auto results = solver.solve_items(items);
  ASSERT_EQ(results.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const RebalanceResult want = engine::cached_serial_reference(
        items[i].spec, instance, items[i].k);
    EXPECT_EQ(results[i].assignment, want.assignment) << "item " << i;
    EXPECT_EQ(results[i].makespan, want.makespan) << "item " << i;
  }
  // 5 distinct keys (both greedy variants normalized together).
  EXPECT_EQ(registry.counter("engine.instances_solved").value(), 5u);
  EXPECT_EQ(results[0].assignment, results[5].assignment);
}

TEST(CacheEngine, ManyThreadsHammeringTheSolverStayConsistent) {
  // TSan target: concurrent solve_one calls over a small instance pool
  // exercise probe / single-flight / publish / eviction from many threads.
  obs::Registry registry;
  engine::BatchOptions options;
  options.workers = 2;
  options.cache_bytes = std::size_t{1} << 16;  // small: forces evictions
  options.cache_shards = 2;
  options.metrics = &registry;
  engine::BatchSolver solver(options);

  constexpr std::size_t kInstances = 12;
  std::vector<Instance> instances;
  std::vector<RebalanceResult> want;
  instances.reserve(kInstances);
  for (std::size_t index = 0; index < kInstances; ++index) {
    instances.push_back(corpus_instance(index));
    want.push_back(engine::cached_serial_reference(
        options.spec, instances.back(), 3));
  }

  constexpr int kThreads = 8;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int iter = 0; iter < 40; ++iter) {
        const auto index = static_cast<std::size_t>(
            rng.uniform_int(0, kInstances - 1));
        const RebalanceResult got = solver.solve_one(instances[index], 3);
        if (got.assignment != want[index].assignment) failed.store(true);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
  // Byte accounting must still be exact after the churn.
  auto* cache = solver.solution_cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(static_cast<std::int64_t>(cache->bytes()),
            registry.gauge("cache.bytes").value());
  EXPECT_EQ(static_cast<std::int64_t>(cache->entries()),
            registry.gauge("cache.entries").value());
}

}  // namespace
}  // namespace lrb
