// Unit tests for the fault-injection subsystem (src/svc/fault) plus the
// pinned regression tests for the two latent server bugs the IO shim
// surfaced:
//
//   * handle_readable treated EINTR as EOF and closed the connection;
//   * handle_writable treated EINTR as a vanished peer and dropped the
//     entire buffered reply.
//
// The regressions are driven by tiny deterministic shims (no randomness),
// so a failure here is exactly reproducible. The seeded-injector tests
// assert the core FaultInjector contract: per-connection fault schedules
// are a pure function of (seed, plan, stream registration order), caps
// bound disruption, and corruption is always detectable (magic/version
// bytes only).

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/generators.h"
#include "engine/batch_solver.h"
#include "obs/metrics.h"
#include "svc/client.h"
#include "svc/fault/fault.h"
#include "svc/fault/io_shim.h"
#include "svc/server.h"
#include "svc/wire.h"

namespace lrb::svc::fault {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan.
// ---------------------------------------------------------------------------

TEST(FaultPlan, FromSeedIsDeterministic) {
  for (std::uint64_t seed : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
    const FaultPlan a = FaultPlan::from_seed(seed);
    const FaultPlan b = FaultPlan::from_seed(seed);
    EXPECT_EQ(a.describe(), b.describe());
    EXPECT_EQ(a.short_read, b.short_read);
    EXPECT_EQ(a.eintr, b.eintr);
    EXPECT_EQ(a.partial_write, b.partial_write);
    EXPECT_EQ(a.conn_reset, b.conn_reset);
    EXPECT_EQ(a.abrupt_close, b.abrupt_close);
    EXPECT_EQ(a.corrupt, b.corrupt);
    EXPECT_EQ(a.max_disruptions_per_conn, b.max_disruptions_per_conn);
    EXPECT_EQ(a.max_disruptions_total, b.max_disruptions_total);
  }
  EXPECT_NE(FaultPlan::from_seed(1).describe(),
            FaultPlan::from_seed(2).describe());
}

TEST(FaultPlan, FromSeedKeepsCampaignsSurvivable) {
  // The derivation must keep every seed's plan inside the survivable
  // envelope: at least one fault kind active (the plan is never a no-op),
  // lethal kinds rare, caps finite and nonzero.
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    const FaultPlan plan = FaultPlan::from_seed(seed);
    const double any = plan.short_read + plan.eintr + plan.partial_write +
                       plan.conn_reset + plan.abrupt_close + plan.corrupt;
    EXPECT_GT(any, 0.0) << plan.describe();
    EXPECT_LE(plan.short_read, 0.35);
    EXPECT_LE(plan.eintr, 0.35);
    EXPECT_LE(plan.partial_write, 0.35);
    EXPECT_LE(plan.conn_reset, 0.03) << plan.describe();
    EXPECT_LE(plan.abrupt_close, 0.03) << plan.describe();
    EXPECT_LE(plan.corrupt, 0.08) << plan.describe();
    EXPECT_GE(plan.max_disruptions_per_conn, 1u);
    EXPECT_GE(plan.max_disruptions_total, plan.max_disruptions_per_conn);
  }
}

// ---------------------------------------------------------------------------
// FaultInjector on a socketpair.
// ---------------------------------------------------------------------------

struct Pair {
  int a = -1;  ///< driven through the injector
  int b = -1;  ///< the raw peer
  Pair() {
    int fds[2];
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~Pair() {
    if (a >= 0) close(a);
    if (b >= 0) close(b);
  }
};

/// Drains `want` payload bytes from pair.a via the injector in 16-byte
/// asks (many decision draws), recording each recv outcome as (n, errno)
/// — the stream's observable schedule.
std::vector<std::pair<ssize_t, int>> recv_schedule(FaultInjector& injector,
                                                   Pair& pair,
                                                   std::size_t want) {
  std::vector<std::pair<ssize_t, int>> schedule;
  std::size_t got = 0;
  char buf[16];
  while (got < want && schedule.size() < 10'000) {
    errno = 0;
    const ssize_t n = injector.recv(pair.a, buf, sizeof buf);
    schedule.emplace_back(n, n < 0 ? errno : 0);
    if (n > 0) got += static_cast<std::size_t>(n);
    if (n == 0 || (n < 0 && errno != EINTR)) break;
  }
  return schedule;
}

TEST(FaultInjector, RecvScheduleReplaysFromSeed) {
  FaultPlan plan;
  plan.seed = 7;
  plan.short_read = 0.5;
  plan.eintr = 0.3;
  plan.max_disruptions_per_conn = 8;
  plan.max_disruptions_total = 8;

  const std::string data(256, 'x');
  std::vector<std::vector<std::pair<ssize_t, int>>> runs;
  std::vector<std::uint64_t> fault_counts;
  for (int run = 0; run < 2; ++run) {
    obs::Registry registry;
    FaultInjector injector(plan, &registry);
    Pair pair;
    ASSERT_EQ(send(pair.b, data.data(), data.size(), 0),
              static_cast<ssize_t>(data.size()));
    runs.push_back(recv_schedule(injector, pair, data.size()));
    fault_counts.push_back(registry.counter("svc.faults_injected").value());
  }
  // Same plan, fresh injector, fresh socketpair: byte-identical schedule
  // and identical fault spend (the fd numbers may differ; the stream
  // index is what matters).
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(fault_counts[0], fault_counts[1]);
  EXPECT_GT(fault_counts[0], 0u);
  EXPECT_LE(fault_counts[0], 8u);
}

TEST(FaultInjector, PerConnCapLimitsDisruptions) {
  FaultPlan plan;
  plan.seed = 3;
  plan.eintr = 1.0;  // every recv would be interrupted...
  plan.max_disruptions_per_conn = 3;  // ...but only 3 times
  plan.max_disruptions_total = 100;
  obs::Registry registry;
  FaultInjector injector(plan, &registry);
  Pair pair;
  ASSERT_EQ(send(pair.b, "hello", 5, 0), 5);

  char buf[16];
  for (int i = 0; i < 3; ++i) {
    errno = 0;
    EXPECT_EQ(injector.recv(pair.a, buf, sizeof buf), -1);
    EXPECT_EQ(errno, EINTR);
  }
  EXPECT_EQ(injector.recv(pair.a, buf, sizeof buf), 5);
  EXPECT_EQ(registry.counter("fault.eintr").value(), 3u);
}

TEST(FaultInjector, TotalCapSharedAcrossStreams) {
  FaultPlan plan;
  plan.seed = 3;
  plan.eintr = 1.0;
  plan.max_disruptions_per_conn = 100;
  plan.max_disruptions_total = 4;
  obs::Registry registry;
  FaultInjector injector(plan, &registry);
  Pair one, two;
  ASSERT_EQ(send(one.b, "a", 1, 0), 1);
  ASSERT_EQ(send(two.b, "b", 1, 0), 1);

  // With eintr=1.0 every recv is interrupted until the shared budget of 4
  // is spent; recv until the payload actually lands on each stream (never
  // past it — a clean recv on a drained socket would block).
  char buf[4];
  int injected = 0;
  for (Pair* pair : {&one, &two}) {
    ssize_t n = -1;
    while (n < 0) {
      errno = 0;
      n = injector.recv(pair->a, buf, sizeof buf);
      if (n < 0) {
        ASSERT_EQ(errno, EINTR);
        ++injected;
      }
      ASSERT_LT(injected, 20);
    }
    EXPECT_EQ(n, 1);
  }
  // The shared budget is 4; everything after runs clean.
  EXPECT_EQ(injected, 4);
  EXPECT_EQ(registry.counter("svc.faults_injected").value(), 4u);
}

TEST(FaultInjector, CorruptionIsAlwaysDetectable) {
  FaultPlan plan;
  plan.seed = 11;
  plan.corrupt = 1.0;
  plan.max_disruptions_per_conn = 1;
  plan.max_disruptions_total = 1;
  obs::Registry registry;
  FaultInjector injector(plan, &registry);
  Pair pair;

  std::string frame;
  encode_frame(frame, MsgType::kPing, 42, "payload");
  ASSERT_EQ(send(pair.b, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));

  std::string got(frame.size(), '\0');
  ASSERT_EQ(injector.recv(pair.a, got.data(), got.size()),
            static_cast<ssize_t>(frame.size()));
  ASSERT_EQ(registry.counter("fault.corrupt").value(), 1u);
  ASSERT_NE(got, frame);

  // Exactly one flipped bit, and it lives in the magic/version bytes, so
  // the frame decodes as kBadMagic or kBadVersion — never as a silently
  // different valid message.
  int flipped_bits = 0;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    const unsigned char diff =
        static_cast<unsigned char>(frame[i] ^ got[i]);
    if (diff != 0) {
      flipped_bits += __builtin_popcount(diff);
      EXPECT_LT(i, 6u) << "corruption outside magic/version bytes";
    }
  }
  EXPECT_EQ(flipped_bits, 1);
  FrameHeader header;
  const DecodeStatus status = decode_header(got, &header);
  EXPECT_TRUE(status == DecodeStatus::kBadMagic ||
              status == DecodeStatus::kBadVersion);
}

TEST(FaultInjector, LethalFaultWakesThePeer) {
  FaultPlan plan;
  plan.seed = 5;
  plan.conn_reset = 1.0;
  plan.max_disruptions_per_conn = 1;
  plan.max_disruptions_total = 1;
  obs::Registry registry;
  FaultInjector injector(plan, &registry);
  Pair pair;
  ASSERT_EQ(send(pair.b, "x", 1, 0), 1);

  char buf[4];
  errno = 0;
  EXPECT_EQ(injector.recv(pair.a, buf, sizeof buf), -1);
  EXPECT_EQ(errno, ECONNRESET);
  // The injector shut the real socket down, so the peer sees EOF instead
  // of blocking forever on a connection that will never speak again.
  EXPECT_EQ(::recv(pair.b, buf, sizeof buf, 0), 0);
  // And the dead stream stays dead: later IO fails without re-spending.
  EXPECT_EQ(injector.recv(pair.a, buf, sizeof buf), -1);
  EXPECT_EQ(registry.counter("svc.faults_injected").value(), 1u);
}

// ---------------------------------------------------------------------------
// Pinned server regressions (deterministic shims, no randomness).
// ---------------------------------------------------------------------------

std::string fault_socket_path() {
  static int counter = 0;
  return "/tmp/lrb_fault_t" + std::to_string(getpid()) + "_" +
         std::to_string(counter++) + ".sock";
}

class ShimServer {
 public:
  explicit ShimServer(SocketIo* io) {
    path_ = fault_socket_path();
    ServerOptions options;
    options.unix_path = path_;
    options.metrics = &registry_;
    options.engine.workers = 2;
    options.io = io;
    server_ = std::make_unique<Server>(std::move(options));
    std::string error;
    if (!server_->start(&error)) {
      ADD_FAILURE() << "server start failed: " << error;
      return;
    }
    runner_ = std::thread([this] { server_->run(); });
  }

  ~ShimServer() {
    if (runner_.joinable()) {
      server_->notify_signal();
      runner_.join();
    }
    unlink(path_.c_str());
  }

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  obs::Registry registry_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
};

/// Fails the first recv per fd with EINTR, passes everything else through.
/// Pinned repro for the old handle_readable bug (EINTR mistaken for EOF:
/// the server closed the connection instead of retrying).
class EintrFirstRecvIo final : public SocketIo {
 public:
  ssize_t recv(int fd, void* buf, std::size_t len) override {
    if (seen_.insert(fd).second) {
      errno = EINTR;
      return -1;
    }
    return SocketIo::real().recv(fd, buf, len);
  }

 private:
  std::set<int> seen_;
};

TEST(SvcFaultRegression, ServerRecvSurvivesEintr) {
  EintrFirstRecvIo io;
  ShimServer ts(&io);
  std::string error;
  auto client = Client::connect_unix(ts.path(), &error);
  ASSERT_TRUE(client) << error;
  FrameHeader header;
  std::string payload;
  // Before the fix this died here: the server's first recv on the new
  // connection hit the injected EINTR and closed it as if it were EOF.
  ASSERT_TRUE(client->call(MsgType::kPing, 1, "still here", &header,
                           &payload, &error))
      << error;
  EXPECT_EQ(header.type, MsgType::kPong);
  EXPECT_EQ(payload, "still here");
}

/// Fails the first send per fd with EINTR. Pinned repro for the old
/// handle_writable bug (EINTR treated as a vanished peer: the whole
/// buffered reply was dropped and the connection closed).
class EintrFirstSendIo final : public SocketIo {
 public:
  ssize_t send(int fd, const void* buf, std::size_t len) override {
    if (seen_.insert(fd).second) {
      errno = EINTR;
      return -1;
    }
    return SocketIo::real().send(fd, buf, len);
  }

 private:
  std::set<int> seen_;
};

TEST(SvcFaultRegression, ServerSendSurvivesEintr) {
  EintrFirstSendIo io;
  ShimServer ts(&io);
  std::string error;
  auto client = Client::connect_unix(ts.path(), &error);
  ASSERT_TRUE(client) << error;

  SolveRequest request;
  request.spec = solver::BackendId::kBestOf;
  request.instance = mixed_corpus_instance(0, 42);
  request.k = 5;
  // Before the fix the reply never arrived: the injected EINTR on the
  // server's first send dropped the buffered SolveOk frame.
  const auto outcome = client->solve(request, 9, &error);
  ASSERT_TRUE(outcome) << error;
  ASSERT_TRUE(outcome->result);
  const auto reference = engine::solve_serial_reference(
      request.spec, request.instance, request.k);
  EXPECT_EQ(outcome->raw_payload, encode_solve_reply_payload(reference));
}

/// Clamps every recv and send to one byte: the worst legal TCP behavior.
/// The server's framing must reassemble requests and deliver replies
/// regardless of how the stream is sliced.
class ByteAtATimeIo final : public SocketIo {
 public:
  ssize_t recv(int fd, void* buf, std::size_t len) override {
    return SocketIo::real().recv(fd, buf, len == 0 ? 0 : 1);
  }
  ssize_t send(int fd, const void* buf, std::size_t len) override {
    return SocketIo::real().send(fd, buf, len == 0 ? 0 : 1);
  }
};

TEST(SvcFaultRegression, ServerFramesSurviveByteAtATimeIo) {
  ByteAtATimeIo io;
  ShimServer ts(&io);
  std::string error;
  auto client = Client::connect_unix(ts.path(), &error);
  ASSERT_TRUE(client) << error;

  SolveRequest request;
  request.spec = solver::BackendId::kGreedy;
  request.instance = mixed_corpus_instance(3, 7);
  request.k = 3;
  const auto outcome = client->solve(request, 77, &error);
  ASSERT_TRUE(outcome) << error;
  ASSERT_TRUE(outcome->result);
  const auto reference = engine::solve_serial_reference(
      request.spec, request.instance, request.k);
  EXPECT_EQ(outcome->raw_payload, encode_solve_reply_payload(reference));
}

}  // namespace
}  // namespace lrb::svc::fault
