// Tests for migration plans: replay correctness, ordering strategies, and
// the monotone order's intermediate-peak behaviour.

#include <gtest/gtest.h>

#include <algorithm>

#include "algo/m_partition.h"
#include "core/generators.h"
#include "core/plan.h"

namespace lrb {
namespace {

TEST(Plan, EmptyWhenTargetEqualsInitial) {
  const auto inst = make_instance({4, 3}, {0, 1}, 2);
  const auto plan = make_plan(inst, inst.initial);
  EXPECT_TRUE(plan.steps.empty());
  EXPECT_EQ(plan.initial_makespan, 4);
  EXPECT_EQ(plan.final_makespan, 4);
  EXPECT_EQ(plan.peak_makespan, 4);
  EXPECT_EQ(plan.total_cost, 0);
}

TEST(Plan, StepsCarryCorrectMetadata) {
  const auto inst = make_instance({9, 5, 2}, {7, 3, 1}, {0, 0, 1}, 3);
  const Assignment target{2, 0, 0};  // job 0 -> P2, job 2 -> P0
  const auto plan = make_plan(inst, target, PlanOrder::kArbitrary);
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[0].job, 0u);
  EXPECT_EQ(plan.steps[0].from, 0u);
  EXPECT_EQ(plan.steps[0].to, 2u);
  EXPECT_EQ(plan.steps[0].size, 9);
  EXPECT_EQ(plan.steps[0].cost, 7);
  EXPECT_EQ(plan.total_cost, 7 + 1);
}

TEST(Plan, ReplayReachesTargetLoads) {
  GeneratorOptions opt;
  opt.num_jobs = 30;
  opt.num_procs = 5;
  opt.placement = PlacementPolicy::kHotspot;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto inst = random_instance(opt, seed);
    const auto result = m_partition_rebalance(inst, 8);
    for (auto order : {PlanOrder::kArbitrary, PlanOrder::kLargestFirst,
                       PlanOrder::kCheapestFirst, PlanOrder::kMonotone}) {
      const auto plan = make_plan(inst, result.assignment, order);
      EXPECT_EQ(plan.steps.size(), static_cast<std::size_t>(result.moves));
      const auto final_loads = replay_loads(inst, plan, plan.steps.size());
      EXPECT_EQ(final_loads, loads(inst, result.assignment));
      EXPECT_EQ(plan.final_makespan, result.makespan);
      EXPECT_GE(plan.peak_makespan, plan.final_makespan);
      EXPECT_GE(plan.peak_makespan, plan.initial_makespan == 0
                                        ? Size{0}
                                        : plan.final_makespan);
    }
  }
}

TEST(Plan, MonotonePeakNeverWorseThanArbitrary) {
  GeneratorOptions opt;
  opt.num_jobs = 25;
  opt.num_procs = 4;
  opt.placement = PlacementPolicy::kHotspot;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const auto inst = random_instance(opt, seed);
    const auto result = m_partition_rebalance(inst, 10);
    const auto monotone =
        make_plan(inst, result.assignment, PlanOrder::kMonotone);
    const auto arbitrary =
        make_plan(inst, result.assignment, PlanOrder::kArbitrary);
    EXPECT_LE(monotone.peak_makespan, arbitrary.peak_makespan)
        << "seed=" << seed;
    // Toward a balanced target from a hotspot start, the greedy order
    // should never need to exceed the starting makespan.
    EXPECT_LE(monotone.peak_makespan, monotone.initial_makespan)
        << "seed=" << seed;
  }
}

TEST(Plan, MonotoneHandlesSwapChains) {
  // Target swaps the big jobs of two full processors through each other:
  // any order must spike one of them; peak_makespan reports it honestly.
  const auto inst = make_instance({6, 6}, {0, 1}, 2);
  const Assignment target{1, 0};
  const auto plan = make_plan(inst, target, PlanOrder::kMonotone);
  EXPECT_EQ(plan.final_makespan, 6);
  EXPECT_EQ(plan.peak_makespan, 12);  // unavoidable transient double-load
}

constexpr PlanOrder kAllOrders[] = {PlanOrder::kArbitrary,
                                    PlanOrder::kLargestFirst,
                                    PlanOrder::kCheapestFirst,
                                    PlanOrder::kMonotone};

TEST(Plan, FullReplayEqualsTargetLoadsForEveryOrder) {
  GeneratorOptions opt;
  opt.num_jobs = 24;
  opt.num_procs = 4;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    opt.placement = static_cast<PlacementPolicy>(seed % 5);
    opt.cost_model = static_cast<CostModel>(seed % 5);
    const auto inst = random_instance(opt, seed);
    const auto result = m_partition_rebalance(inst, 9);
    const auto target_loads = loads(inst, result.assignment);
    for (const auto order : kAllOrders) {
      const auto plan = make_plan(inst, result.assignment, order);
      EXPECT_EQ(replay_loads(inst, plan, plan.steps.size()), target_loads)
          << "seed=" << seed << " order=" << static_cast<int>(order);
    }
  }
}

TEST(Plan, PeakMakespanEqualsMaxOverReplayedPrefixes) {
  // peak_makespan is defined as the max over the start plus every prefix;
  // recompute it the slow way through replay_loads and demand equality.
  GeneratorOptions opt;
  opt.num_jobs = 20;
  opt.num_procs = 4;
  opt.placement = PlacementPolicy::kHotspot;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const auto inst = random_instance(opt, seed);
    const auto result = m_partition_rebalance(inst, 7);
    for (const auto order : kAllOrders) {
      const auto plan = make_plan(inst, result.assignment, order);
      Size replayed_peak = 0;
      for (std::size_t prefix = 0; prefix <= plan.steps.size(); ++prefix) {
        const auto state = replay_loads(inst, plan, prefix);
        const Size ms = state.empty()
                            ? Size{0}
                            : *std::max_element(state.begin(), state.end());
        replayed_peak = std::max(replayed_peak, ms);
      }
      EXPECT_EQ(plan.peak_makespan, replayed_peak)
          << "seed=" << seed << " order=" << static_cast<int>(order);
    }
  }
}

TEST(Plan, MonotonePeakIsMinimalAmongAllOrders) {
  // kMonotone's greedy choice must never be beaten by any of the other
  // shipped orders on the same (instance, target) pair.
  GeneratorOptions opt;
  opt.num_jobs = 18;
  opt.num_procs = 4;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    opt.placement = static_cast<PlacementPolicy>(seed % 5);
    const auto inst = random_instance(opt, 100 + seed);
    const auto result = m_partition_rebalance(inst, 8);
    const auto monotone =
        make_plan(inst, result.assignment, PlanOrder::kMonotone);
    for (const auto order :
         {PlanOrder::kArbitrary, PlanOrder::kLargestFirst,
          PlanOrder::kCheapestFirst}) {
      const auto other = make_plan(inst, result.assignment, order);
      EXPECT_LE(monotone.peak_makespan, other.peak_makespan)
          << "seed=" << seed << " order=" << static_cast<int>(order);
    }
  }
}

TEST(Plan, OrderingStrategiesSortAsNamed) {
  const auto inst =
      make_instance({8, 4, 6}, {1, 9, 2}, {0, 0, 0}, 4);
  const Assignment target{1, 2, 3};
  const auto largest = make_plan(inst, target, PlanOrder::kLargestFirst);
  EXPECT_EQ(largest.steps[0].size, 8);
  EXPECT_EQ(largest.steps[2].size, 4);
  const auto cheapest = make_plan(inst, target, PlanOrder::kCheapestFirst);
  EXPECT_EQ(cheapest.steps[0].cost, 1);
  EXPECT_EQ(cheapest.steps[2].cost, 9);
}

}  // namespace
}  // namespace lrb
