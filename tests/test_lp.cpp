// Tests for the LP substrate: the simplex solver, min-cost matching, and
// the Shmoys-Tardos GAP baseline with its 2-approximation guarantee.

#include <gtest/gtest.h>

#include <array>
#include <optional>
#include <limits>
#include <algorithm>
#include <cmath>
#include <numeric>

#include "algo/exact.h"
#include "core/generators.h"
#include "lp/gap.h"
#include "lp/matching.h"
#include "ext/gadgets.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace lrb {
namespace {

// ------------------------------------------------------------------ simplex

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), value 36.
  LinearProgram lp;
  lp.objective = {-3.0, -5.0};  // minimize the negation
  lp.add_le({1.0, 0.0}, 4.0);
  lp.add_le({0.0, 2.0}, 12.0);
  lp.add_le({3.0, 2.0}, 18.0);
  const auto solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -36.0, 1e-7);
  EXPECT_NEAR(solution.x[0], 2.0, 1e-7);
  EXPECT_NEAR(solution.x[1], 6.0, 1e-7);
}

TEST(Simplex, EqualityAndGeConstraints) {
  // min x + 2y s.t. x + y = 10, x >= 3, y >= 2 -> (8, 2), value 12.
  LinearProgram lp;
  lp.objective = {1.0, 2.0};
  lp.add_eq({1.0, 1.0}, 10.0);
  lp.add_ge({1.0, 0.0}, 3.0);
  lp.add_ge({0.0, 1.0}, 2.0);
  const auto solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 12.0, 1e-7);
  EXPECT_NEAR(solution.x[0], 8.0, 1e-7);
  EXPECT_NEAR(solution.x[1], 2.0, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  LinearProgram lp;
  lp.objective = {1.0};
  lp.add_le({1.0}, 1.0);
  lp.add_ge({1.0}, 2.0);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LinearProgram lp;
  lp.objective = {-1.0};  // maximize x with no upper bound
  lp.add_ge({1.0}, 0.0);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalized) {
  // min x s.t. -x <= -5 (i.e. x >= 5).
  LinearProgram lp;
  lp.objective = {1.0};
  lp.add_le({-1.0}, -5.0);
  const auto solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.x[0], 5.0, 1e-7);
}

TEST(Simplex, DegenerateInstanceTerminates) {
  // Klee-Minty-flavoured degeneracy: Bland's rule must not cycle.
  LinearProgram lp;
  lp.objective = {-100.0, -10.0, -1.0};
  lp.add_le({1.0, 0.0, 0.0}, 1.0);
  lp.add_le({20.0, 1.0, 0.0}, 100.0);
  lp.add_le({200.0, 20.0, 1.0}, 10000.0);
  const auto solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -10000.0, 1e-6);
}

// ----------------------------------------------------------------- matching

TEST(Matching, SimplePerfect) {
  const std::vector<MatchingEdge> edges{
      {0, 0, 5}, {0, 1, 1}, {1, 0, 2}, {1, 1, 4}};
  const auto result = min_cost_matching(2, 2, edges);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->total_cost, 3);  // 0->1 (1) + 1->0 (2)
  EXPECT_EQ(result->match[0], 1u);
  EXPECT_EQ(result->match[1], 0u);
}

TEST(Matching, InfeasibleWhenRightTooSmall) {
  EXPECT_FALSE(min_cost_matching(2, 1, {{0, 0, 1}, {1, 0, 1}}).has_value());
}

TEST(Matching, InfeasibleWhenDisconnected) {
  EXPECT_FALSE(min_cost_matching(2, 2, {{0, 0, 1}, {1, 0, 1}}).has_value());
}

TEST(Matching, LeftSmallerThanRightUsesBestSubset) {
  const std::vector<MatchingEdge> edges{
      {0, 0, 9}, {0, 1, 1}, {0, 2, 5}};
  const auto result = min_cost_matching(1, 3, edges);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->total_cost, 1);
  EXPECT_EQ(result->match[0], 1u);
}

TEST(Matching, MatchesBruteForceOnRandomInstances) {
  Rng rng(555);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 5;
    std::vector<MatchingEdge> edges;
    std::vector<std::vector<std::int64_t>> cost(
        n, std::vector<std::int64_t>(n, -1));
    for (std::size_t l = 0; l < n; ++l) {
      for (std::size_t r = 0; r < n; ++r) {
        if (rng.bernoulli(0.7)) {
          cost[l][r] = rng.uniform_int(0, 20);
          edges.push_back({l, r, cost[l][r]});
        }
      }
    }
    // Brute force over permutations.
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    std::int64_t best = -1;
    do {
      std::int64_t total = 0;
      bool ok = true;
      for (std::size_t l = 0; l < n && ok; ++l) {
        if (cost[l][perm[l]] < 0) {
          ok = false;
        } else {
          total += cost[l][perm[l]];
        }
      }
      if (ok && (best < 0 || total < best)) best = total;
    } while (std::next_permutation(perm.begin(), perm.end()));

    const auto result = min_cost_matching(n, n, edges);
    if (best < 0) {
      EXPECT_FALSE(result.has_value()) << "trial " << trial;
    } else {
      ASSERT_TRUE(result.has_value()) << "trial " << trial;
      EXPECT_EQ(result->total_cost, best) << "trial " << trial;
    }
  }
}

// ---------------------------------------------------------------------- gap

TEST(Gap, ReductionFromRebalancingShape) {
  const auto inst = make_instance({5, 3}, {7, 2}, {0, 1}, 2);
  const auto gap = gap_from_rebalancing(inst);
  EXPECT_EQ(gap.num_jobs(), 2u);
  EXPECT_EQ(gap.num_machines(), 2u);
  EXPECT_EQ(gap.processing[0][0], 5);
  EXPECT_EQ(gap.processing[0][1], 5);
  EXPECT_EQ(gap.cost[0][0], 0);  // job 0 starts on machine 0
  EXPECT_EQ(gap.cost[0][1], 7);
  EXPECT_EQ(gap.cost[1][1], 0);
  EXPECT_EQ(gap.cost[1][0], 2);
}

TEST(Gap, LpInfeasibleBelowMaxJob) {
  const auto inst = make_instance({10, 2}, {0, 0}, 2);
  const auto gap = gap_from_rebalancing(inst);
  EXPECT_FALSE(gap_lp_min_cost(gap, 9).feasible);
  EXPECT_TRUE(gap_lp_min_cost(gap, 10).feasible);
}

TEST(Gap, LpCostZeroAtInitialMakespan) {
  GeneratorOptions opt;
  opt.num_jobs = 12;
  opt.num_procs = 3;
  const auto inst = random_instance(opt, 7);
  const auto gap = gap_from_rebalancing(inst);
  const auto lp = gap_lp_min_cost(gap, inst.initial_makespan());
  ASSERT_TRUE(lp.feasible);
  EXPECT_NEAR(lp.cost, 0.0, 1e-6);  // staying put is free and fits
}

TEST(Gap, ShmoysTardosGuaranteesAgainstExact) {
  // Cost <= B and makespan <= 2 * OPT(B), verified against B&B.
  GeneratorOptions opt;
  opt.num_jobs = 8;
  opt.num_procs = 3;
  opt.max_size = 15;
  opt.placement = PlacementPolicy::kHotspot;
  opt.cost_model = CostModel::kUniform;
  opt.max_cost = 5;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const auto inst = random_instance(opt, seed);
    for (Cost budget : {Cost{0}, Cost{4}, Cost{12}}) {
      const auto st = st_rebalance(inst, budget);
      EXPECT_LE(st.cost, budget) << "seed=" << seed;
      ExactOptions exact_opt;
      exact_opt.budget = budget;
      const auto exact = exact_rebalance(inst, exact_opt);
      ASSERT_TRUE(exact.proven_optimal);
      EXPECT_LE(st.makespan, 2 * exact.best.makespan)
          << "seed=" << seed << " budget=" << budget;
    }
  }
}

TEST(Gap, RoundingStaysWithinSlotBound) {
  GeneratorOptions opt;
  opt.num_jobs = 20;
  opt.num_procs = 4;
  opt.placement = PlacementPolicy::kSingleProc;
  const auto inst = random_instance(opt, 3);
  const auto gap = gap_from_rebalancing(inst);
  const Size T = std::max(inst.max_job(),
                          (inst.total_size() + 3) / 4);
  const auto lp = gap_lp_min_cost(gap, T);
  ASSERT_TRUE(lp.feasible);
  const auto rounded = shmoys_tardos_round(gap, T, lp);
  ASSERT_TRUE(rounded.has_value());
  EXPECT_LE(rounded->makespan, 2 * T);
  EXPECT_LE(static_cast<double>(rounded->total_cost), lp.cost + 1e-6);
}

TEST(Gap, ExactOracleOnHandInstance) {
  // 2 machines; job 0 cheap on m0, job 1 cheap on m1.
  GapInstance gap;
  gap.processing = {{4, 4}, {3, 3}};
  gap.cost = {{0, 5}, {5, 0}};
  auto r = gap_exact_min_makespan(gap, 0);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.makespan, 4);  // forced to the cheap machines: loads 4 and 3
  r = gap_exact_min_makespan(gap, 10);
  EXPECT_EQ(r.makespan, 4);  // colocating would be worse anyway
}

}  // namespace
}  // namespace lrb

namespace lrb {
namespace {

// Independent 2-variable LP oracle: the optimum of a feasible bounded LP
// lies on a vertex, i.e. the intersection of two tight constraints among
// {rows, x >= 0 bounds}. Enumerate all pairs, keep feasible points, pick
// the best. Used to cross-check the simplex on random instances.
struct TwoVarLp {
  double c1, c2;
  std::vector<std::array<double, 3>> rows;  // a1*x1 + a2*x2 <= a3
};

std::optional<double> vertex_optimum(const TwoVarLp& lp) {
  std::vector<std::array<double, 3>> lines = lp.rows;
  lines.push_back({1, 0, 0});  // x1 >= 0 as -x1 <= 0 boundary x1 = 0
  lines.push_back({0, 1, 0});  // x2 = 0
  double best = std::numeric_limits<double>::infinity();
  bool found = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      const double det =
          lines[i][0] * lines[j][1] - lines[i][1] * lines[j][0];
      if (std::abs(det) < 1e-9) continue;
      const double x1 =
          (lines[i][2] * lines[j][1] - lines[i][1] * lines[j][2]) / det;
      const double x2 =
          (lines[i][0] * lines[j][2] - lines[i][2] * lines[j][0]) / det;
      if (x1 < -1e-7 || x2 < -1e-7) continue;
      bool feasible = true;
      for (const auto& row : lp.rows) {
        if (row[0] * x1 + row[1] * x2 > row[2] + 1e-6) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      found = true;
      best = std::min(best, lp.c1 * x1 + lp.c2 * x2);
    }
  }
  if (!found) return std::nullopt;
  return best;
}

TEST(Simplex, MatchesVertexEnumerationOnRandomTwoVarLps) {
  Rng rng(2718);
  int solved = 0;
  for (int trial = 0; trial < 60; ++trial) {
    TwoVarLp lp;
    lp.c1 = static_cast<double>(rng.uniform_int(-5, 5));
    lp.c2 = static_cast<double>(rng.uniform_int(-5, 5));
    const int rows = static_cast<int>(rng.uniform_int(2, 4));
    bool bounded_box = false;
    for (int r = 0; r < rows; ++r) {
      lp.rows.push_back({static_cast<double>(rng.uniform_int(0, 4)),
                         static_cast<double>(rng.uniform_int(0, 4)),
                         static_cast<double>(rng.uniform_int(1, 20))});
    }
    // Always bound the region so the vertex oracle applies.
    lp.rows.push_back({1, 1, static_cast<double>(rng.uniform_int(5, 25))});
    bounded_box = true;
    ASSERT_TRUE(bounded_box);

    LinearProgram program;
    program.objective = {lp.c1, lp.c2};
    for (const auto& row : lp.rows) {
      program.add_le({row[0], row[1]}, row[2]);
    }
    const auto solution = solve_lp(program);
    const auto oracle = vertex_optimum(lp);
    ASSERT_TRUE(oracle.has_value()) << "trial " << trial;  // origin feasible
    ASSERT_EQ(solution.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(solution.objective, *oracle, 1e-6) << "trial " << trial;
    ++solved;
  }
  EXPECT_EQ(solved, 60);
}

}  // namespace
}  // namespace lrb
