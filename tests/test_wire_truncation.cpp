// Truncation table for the LRBS wire protocol — every v1 AND v2
// (streaming-session) frame type, truncated at every byte offset, at two
// levels.
//
//   * Decode level: decode_header on every header prefix must report
//     kNeedMore (never read past the bytes given — ASan/UBSan enforce
//     that), and every strict prefix of each payload must be rejected by
//     its payload decoder. No prefix may silently decode to a different
//     valid value.
//
//   * Socket level: a client that writes a truncated frame and
//     disconnects must not wedge or crash the server, and must not leak
//     the partial frame into the next connection's stream. The sweep
//     covers every offset of the small frames and every header offset
//     plus payload probes of the large Solve frame.
//
// This file runs under ASan/UBSan in CI's sanitize job, which is what
// turns "rejected" into "provably reads in bounds".

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "core/generators.h"
#include "engine/batch_solver.h"
#include "obs/metrics.h"
#include "svc/client.h"
#include "svc/server.h"
#include "svc/wire.h"

namespace lrb::svc {
namespace {

SolveRequest sample_solve_request() {
  SolveRequest request;
  request.spec = solver::BackendId::kBestOf;
  request.instance = mixed_corpus_instance(1, 13);
  request.k = 4;
  request.deadline_ms = 5000;
  return request;
}

RebalanceResult sample_result() {
  const SolveRequest request = sample_solve_request();
  return engine::solve_serial_reference(request.spec, request.instance,
                                        request.k);
}

SessionOpenRequest sample_session_open() {
  SessionOpenRequest request;
  request.session_id = 7;
  request.trigger.spec = solver::BackendId::kBestOf;
  request.trigger.delta_count = 8;
  request.trigger.imbalance_ratio = 1.5;
  request.instance = mixed_corpus_instance(2, 13);
  return request;
}

SessionDeltaRequest sample_session_delta() {
  SessionDeltaRequest request;
  request.session_id = 7;
  request.first_seq = 3;
  stream::Delta arrive;
  arrive.kind = stream::DeltaKind::kJobArrive;
  arrive.id = 100;
  arrive.size = 5;
  request.deltas.push_back(arrive);
  stream::Delta depart;
  depart.kind = stream::DeltaKind::kJobDepart;
  depart.id = 0;
  request.deltas.push_back(depart);
  stream::Delta replan;
  replan.kind = stream::DeltaKind::kReplan;
  request.deltas.push_back(replan);
  return request;
}

SessionDeltaReply sample_session_delta_reply(bool with_plan) {
  SessionDeltaReply reply;
  reply.session_id = 7;
  reply.last_seq = 5;
  reply.applied = 2;
  reply.rejected = 1;
  reply.makespan = 17;
  reply.lower_bound = 12;
  reply.state_digest = 0xfeedfacecafebeefull;
  reply.first_error = "unknown job id 42";
  if (with_plan) {
    stream::SessionPlan plan;
    plan.plan_seq = 1;
    plan.triggered_by_seq = 5;
    plan.reason = stream::PlanReason::kImbalance;
    plan.makespan_before = 21;
    plan.makespan_after = 17;
    plan.moves.push_back({3, 0, 1});
    plan.moves.push_back({9, 2, 0});
    reply.plans.push_back(std::move(plan));
  }
  return reply;
}

SessionStatsReply sample_session_stats_reply() {
  SessionStatsReply reply;
  reply.session_id = 7;
  reply.stats.num_procs = 3;
  reply.stats.num_jobs = 11;
  reply.stats.deltas_applied = 40;
  reply.stats.deltas_rejected = 2;
  reply.stats.plans_emitted = 4;
  reply.stats.moves_total = 9;
  reply.stats.last_seq = 42;
  reply.stats.makespan = 17;
  reply.stats.lower_bound = 12;
  reply.stats.digest = 0x1234567890abcdefull;
  return reply;
}

SessionCloseReply sample_session_close_reply() {
  SessionCloseReply reply;
  reply.session_id = 7;
  reply.deltas_applied = 40;
  reply.deltas_rejected = 2;
  reply.plans_emitted = 4;
  return reply;
}

/// Every LRBS frame type (v1 and v2) with a representative payload.
std::vector<std::pair<MsgType, std::string>> all_frame_payloads() {
  return {
      {MsgType::kPing, "ping payload"},
      {MsgType::kSolve, encode_solve_request(sample_solve_request())},
      {MsgType::kStats, ""},
      {MsgType::kDrain, ""},
      {MsgType::kSessionOpen,
       encode_session_open_request(sample_session_open())},
      {MsgType::kSessionDelta,
       encode_session_delta_request(sample_session_delta())},
      {MsgType::kSessionStats, encode_session_id_payload(7)},
      {MsgType::kSessionClose, encode_session_id_payload(7)},
      {MsgType::kPong, "ping payload"},
      {MsgType::kSolveOk, encode_solve_reply_payload(sample_result())},
      {MsgType::kStatsOk, R"({"svc.requests": 1})"},
      {MsgType::kDrainOk, ""},
      {MsgType::kSessionOpenOk,
       encode_session_open_reply({7, 17, 12, 0xabcdefull})},
      {MsgType::kSessionDeltaOk,
       encode_session_delta_reply(sample_session_delta_reply(false))},
      {MsgType::kSessionPlan,
       encode_session_delta_reply(sample_session_delta_reply(true))},
      {MsgType::kSessionStatsOk,
       encode_session_stats_reply(sample_session_stats_reply())},
      {MsgType::kSessionCloseOk,
       encode_session_close_reply(sample_session_close_reply())},
      {MsgType::kError,
       encode_error_payload(ErrorCode::kBadRequest, "truncated")},
  };
}

// ---------------------------------------------------------------------------
// Decode level.
// ---------------------------------------------------------------------------

TEST(WireTruncation, EveryHeaderPrefixNeedsMore) {
  for (const auto& [type, payload] : all_frame_payloads()) {
    std::string frame;
    encode_frame(frame, type, 0x1122334455667788ull, payload);
    ASSERT_GE(frame.size(), kHeaderSize);
    for (std::size_t len = 0; len < kHeaderSize; ++len) {
      FrameHeader header;
      // The prefix is materialized as its own allocation so ASan proves
      // decode_header never touches byte len or beyond.
      const std::string prefix = frame.substr(0, len);
      EXPECT_EQ(decode_header(prefix, &header), DecodeStatus::kNeedMore)
          << "type " << static_cast<int>(type) << " offset " << len;
    }
    FrameHeader header;
    EXPECT_EQ(decode_header(frame, &header), DecodeStatus::kOk);
    EXPECT_EQ(header.type, type);
    EXPECT_EQ(header.payload_len, payload.size());
  }
}

TEST(WireTruncation, EverySolveRequestPrefixIsRejected) {
  const std::string payload = encode_solve_request(sample_solve_request());
  ASSERT_GT(payload.size(), 0u);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const std::string prefix = payload.substr(0, len);
    std::string error;
    EXPECT_FALSE(decode_solve_request(prefix, &error))
        << "prefix of length " << len << " decoded";
    EXPECT_FALSE(error.empty()) << "no diagnostic at length " << len;
  }
  std::string error;
  EXPECT_TRUE(decode_solve_request(payload, &error)) << error;
}

TEST(WireTruncation, EverySolveReplyPrefixIsRejected) {
  const std::string payload = encode_solve_reply_payload(sample_result());
  ASSERT_GT(payload.size(), 0u);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const std::string prefix = payload.substr(0, len);
    std::string error;
    EXPECT_FALSE(decode_solve_reply_payload(prefix, &error))
        << "prefix of length " << len << " decoded";
  }
  std::string error;
  EXPECT_TRUE(decode_solve_reply_payload(payload, &error)) << error;
}

TEST(WireTruncation, EveryErrorPayloadPrefixIsRejected) {
  const std::string payload =
      encode_error_payload(ErrorCode::kDraining, "drain in progress");
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const std::string prefix = payload.substr(0, len);
    EXPECT_FALSE(decode_error_payload(prefix))
        << "prefix of length " << len << " decoded";
  }
  const auto full = decode_error_payload(payload);
  ASSERT_TRUE(full);
  EXPECT_EQ(full->code, ErrorCode::kDraining);
  EXPECT_EQ(full->text, "drain in progress");
}

// Every v2 payload decoder, swept over every strict prefix: no prefix may
// decode, none may read past its input (ASan-enforced in CI's sanitize
// job), and the full payload must round-trip.
TEST(WireTruncationSession, EverySessionOpenRequestPrefixIsRejected) {
  const std::string payload =
      encode_session_open_request(sample_session_open());
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const std::string prefix = payload.substr(0, len);
    std::string error;
    EXPECT_FALSE(decode_session_open_request(prefix, &error))
        << "prefix of length " << len << " decoded";
    EXPECT_FALSE(error.empty()) << "no diagnostic at length " << len;
  }
  std::string error;
  const auto full = decode_session_open_request(payload, &error);
  ASSERT_TRUE(full) << error;
  EXPECT_EQ(full->session_id, 7u);
  EXPECT_EQ(full->trigger.delta_count, 8u);
}

TEST(WireTruncationSession, EverySessionDeltaRequestPrefixIsRejected) {
  const std::string payload =
      encode_session_delta_request(sample_session_delta());
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const std::string prefix = payload.substr(0, len);
    std::string error;
    EXPECT_FALSE(decode_session_delta_request(prefix, &error))
        << "prefix of length " << len << " decoded";
  }
  std::string error;
  const auto full = decode_session_delta_request(payload, &error);
  ASSERT_TRUE(full) << error;
  EXPECT_EQ(full->first_seq, 3u);
  EXPECT_EQ(full->deltas.size(), 3u);
}

TEST(WireTruncationSession, EverySessionIdPayloadPrefixIsRejected) {
  const std::string payload = encode_session_id_payload(7);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(decode_session_id_payload(payload.substr(0, len)))
        << "prefix of length " << len << " decoded";
  }
  const auto full = decode_session_id_payload(payload);
  ASSERT_TRUE(full);
  EXPECT_EQ(*full, 7u);
}

TEST(WireTruncationSession, EverySessionOpenReplyPrefixIsRejected) {
  const std::string payload =
      encode_session_open_reply({7, 17, 12, 0xabcdefull});
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const std::string prefix = payload.substr(0, len);
    std::string error;
    EXPECT_FALSE(decode_session_open_reply(prefix, &error))
        << "prefix of length " << len << " decoded";
  }
  std::string error;
  const auto full = decode_session_open_reply(payload, &error);
  ASSERT_TRUE(full) << error;
  EXPECT_EQ(full->state_digest, 0xabcdefull);
}

TEST(WireTruncationSession, EverySessionDeltaReplyPrefixIsRejected) {
  // Both shapes: the plain ack and the plan-carrying one (kSessionPlan),
  // whose tail holds variable-length plans and move lists.
  for (const bool with_plan : {false, true}) {
    const std::string payload =
        encode_session_delta_reply(sample_session_delta_reply(with_plan));
    for (std::size_t len = 0; len < payload.size(); ++len) {
      const std::string prefix = payload.substr(0, len);
      std::string error;
      EXPECT_FALSE(decode_session_delta_reply(prefix, &error))
          << (with_plan ? "plan" : "ack") << " prefix of length " << len
          << " decoded";
    }
    std::string error;
    const auto full = decode_session_delta_reply(payload, &error);
    ASSERT_TRUE(full) << error;
    EXPECT_EQ(full->plans.size(), with_plan ? 1u : 0u);
    EXPECT_EQ(full->first_error, "unknown job id 42");
  }
}

TEST(WireTruncationSession, EverySessionStatsReplyPrefixIsRejected) {
  const std::string payload =
      encode_session_stats_reply(sample_session_stats_reply());
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const std::string prefix = payload.substr(0, len);
    std::string error;
    EXPECT_FALSE(decode_session_stats_reply(prefix, &error))
        << "prefix of length " << len << " decoded";
  }
  std::string error;
  const auto full = decode_session_stats_reply(payload, &error);
  ASSERT_TRUE(full) << error;
  EXPECT_EQ(full->stats.last_seq, 42u);
}

TEST(WireTruncationSession, EverySessionCloseReplyPrefixIsRejected) {
  const std::string payload =
      encode_session_close_reply(sample_session_close_reply());
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const std::string prefix = payload.substr(0, len);
    std::string error;
    EXPECT_FALSE(decode_session_close_reply(prefix, &error))
        << "prefix of length " << len << " decoded";
  }
  std::string error;
  const auto full = decode_session_close_reply(payload, &error);
  ASSERT_TRUE(full) << error;
  EXPECT_EQ(full->plans_emitted, 4u);
}

// ---------------------------------------------------------------------------
// Socket level.
// ---------------------------------------------------------------------------

std::string trunc_socket_path() {
  static int counter = 0;
  return "/tmp/lrb_trunc_t" + std::to_string(getpid()) + "_" +
         std::to_string(counter++) + ".sock";
}

class TruncServer {
 public:
  TruncServer() {
    path_ = trunc_socket_path();
    ServerOptions options;
    options.unix_path = path_;
    options.metrics = &registry_;
    options.engine.workers = 2;
    server_ = std::make_unique<Server>(std::move(options));
    std::string error;
    if (!server_->start(&error)) {
      ADD_FAILURE() << "server start failed: " << error;
      return;
    }
    runner_ = std::thread([this] { server_->run(); });
  }

  ~TruncServer() {
    if (runner_.joinable()) {
      server_->notify_signal();
      runner_.join();
    }
    unlink(path_.c_str());
  }

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  obs::Registry registry_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
};

/// Writes `bytes` then disconnects; then proves the server still answers a
/// well-formed Ping on a fresh connection (nothing wedged, nothing leaked
/// into another connection's stream).
void truncate_then_ping(TruncServer& ts, std::string_view bytes,
                        std::uint64_t probe_id) {
  std::string error;
  {
    auto torn = Client::connect_unix(ts.path(), &error);
    ASSERT_TRUE(torn) << error;
    ASSERT_TRUE(torn->send_bytes(bytes, &error)) << error;
  }  // abrupt disconnect mid-frame
  auto probe = Client::connect_unix(ts.path(), &error);
  ASSERT_TRUE(probe) << error;
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(probe->call(MsgType::kPing, probe_id, "probe", &header,
                          &payload, &error))
      << error;
  EXPECT_EQ(header.type, MsgType::kPong);
  EXPECT_EQ(header.request_id, probe_id);
}

TEST(WireTruncation, ServerSurvivesSmallFramesTruncatedAtEveryOffset) {
  TruncServer ts;
  std::uint64_t probe_id = 1;
  for (const auto& [type, payload] : all_frame_payloads()) {
    std::string frame;
    encode_frame(frame, type, 7, payload);
    if (frame.size() > 96) continue;  // the Solve/SolveOk sweep is below
    for (std::size_t len = 0; len < frame.size(); ++len) {
      truncate_then_ping(ts, std::string_view(frame).substr(0, len),
                         probe_id++);
      if (HasFatalFailure()) return;
    }
  }
}

/// Every header boundary, then probes through the payload: the decoder
/// state machine only changes shape at the header/payload transition, so
/// stepping the payload in strides keeps the sweep fast while still
/// covering both sides of every interesting boundary.
void sweep_truncated_frame(TruncServer& ts, std::string_view frame,
                           std::uint64_t first_probe_id) {
  std::vector<std::size_t> offsets;
  for (std::size_t len = 0; len <= kHeaderSize + 8; ++len) {
    offsets.push_back(len);
  }
  for (std::size_t len = kHeaderSize + 8; len < frame.size(); len += 7) {
    offsets.push_back(len);
  }
  offsets.push_back(frame.size() - 1);
  std::uint64_t probe_id = first_probe_id;
  for (const std::size_t len : offsets) {
    truncate_then_ping(ts, frame.substr(0, len), probe_id++);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(WireTruncation, ServerSurvivesTruncatedSolveFrames) {
  TruncServer ts;
  std::string frame;
  encode_frame(frame, MsgType::kSolve, 7,
               encode_solve_request(sample_solve_request()));
  sweep_truncated_frame(ts, frame, 1000);
}

TEST(WireTruncationSession, ServerSurvivesTruncatedSessionFrames) {
  // The two big v2 request frames (the small SessionStats/SessionClose
  // frames are covered by the every-offset sweep above).
  TruncServer ts;
  std::string open_frame;
  encode_frame(open_frame, MsgType::kSessionOpen, 7,
               encode_session_open_request(sample_session_open()));
  sweep_truncated_frame(ts, open_frame, 2000);
  if (HasFatalFailure()) return;
  std::string delta_frame;
  encode_frame(delta_frame, MsgType::kSessionDelta, 8,
               encode_session_delta_request(sample_session_delta()));
  sweep_truncated_frame(ts, delta_frame, 3000);
}

}  // namespace
}  // namespace lrb::svc
