// Truncation table for the LRBS v1 wire protocol: every frame type,
// truncated at every byte offset, at two levels.
//
//   * Decode level: decode_header on every header prefix must report
//     kNeedMore (never read past the bytes given — ASan/UBSan enforce
//     that), and every strict prefix of each payload must be rejected by
//     its payload decoder. No prefix may silently decode to a different
//     valid value.
//
//   * Socket level: a client that writes a truncated frame and
//     disconnects must not wedge or crash the server, and must not leak
//     the partial frame into the next connection's stream. The sweep
//     covers every offset of the small frames and every header offset
//     plus payload probes of the large Solve frame.
//
// This file runs under ASan/UBSan in CI's sanitize job, which is what
// turns "rejected" into "provably reads in bounds".

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "core/generators.h"
#include "engine/batch_solver.h"
#include "obs/metrics.h"
#include "svc/client.h"
#include "svc/server.h"
#include "svc/wire.h"

namespace lrb::svc {
namespace {

SolveRequest sample_solve_request() {
  SolveRequest request;
  request.algo = engine::Algo::kBestOf;
  request.instance = mixed_corpus_instance(1, 13);
  request.k = 4;
  request.deadline_ms = 5000;
  return request;
}

RebalanceResult sample_result() {
  const SolveRequest request = sample_solve_request();
  return engine::solve_serial_reference(request.algo, request.instance,
                                        request.k, request.ptas_budget,
                                        request.ptas_eps);
}

/// Every LRBS v1 frame type with a representative payload.
std::vector<std::pair<MsgType, std::string>> all_frame_payloads() {
  return {
      {MsgType::kPing, "ping payload"},
      {MsgType::kSolve, encode_solve_request(sample_solve_request())},
      {MsgType::kStats, ""},
      {MsgType::kDrain, ""},
      {MsgType::kPong, "ping payload"},
      {MsgType::kSolveOk, encode_solve_reply_payload(sample_result())},
      {MsgType::kStatsOk, R"({"svc.requests": 1})"},
      {MsgType::kDrainOk, ""},
      {MsgType::kError,
       encode_error_payload(ErrorCode::kBadRequest, "truncated")},
  };
}

// ---------------------------------------------------------------------------
// Decode level.
// ---------------------------------------------------------------------------

TEST(WireTruncation, EveryHeaderPrefixNeedsMore) {
  for (const auto& [type, payload] : all_frame_payloads()) {
    std::string frame;
    encode_frame(frame, type, 0x1122334455667788ull, payload);
    ASSERT_GE(frame.size(), kHeaderSize);
    for (std::size_t len = 0; len < kHeaderSize; ++len) {
      FrameHeader header;
      // The prefix is materialized as its own allocation so ASan proves
      // decode_header never touches byte len or beyond.
      const std::string prefix = frame.substr(0, len);
      EXPECT_EQ(decode_header(prefix, &header), DecodeStatus::kNeedMore)
          << "type " << static_cast<int>(type) << " offset " << len;
    }
    FrameHeader header;
    EXPECT_EQ(decode_header(frame, &header), DecodeStatus::kOk);
    EXPECT_EQ(header.type, type);
    EXPECT_EQ(header.payload_len, payload.size());
  }
}

TEST(WireTruncation, EverySolveRequestPrefixIsRejected) {
  const std::string payload = encode_solve_request(sample_solve_request());
  ASSERT_GT(payload.size(), 0u);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const std::string prefix = payload.substr(0, len);
    std::string error;
    EXPECT_FALSE(decode_solve_request(prefix, &error))
        << "prefix of length " << len << " decoded";
    EXPECT_FALSE(error.empty()) << "no diagnostic at length " << len;
  }
  std::string error;
  EXPECT_TRUE(decode_solve_request(payload, &error)) << error;
}

TEST(WireTruncation, EverySolveReplyPrefixIsRejected) {
  const std::string payload = encode_solve_reply_payload(sample_result());
  ASSERT_GT(payload.size(), 0u);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const std::string prefix = payload.substr(0, len);
    std::string error;
    EXPECT_FALSE(decode_solve_reply_payload(prefix, &error))
        << "prefix of length " << len << " decoded";
  }
  std::string error;
  EXPECT_TRUE(decode_solve_reply_payload(payload, &error)) << error;
}

TEST(WireTruncation, EveryErrorPayloadPrefixIsRejected) {
  const std::string payload =
      encode_error_payload(ErrorCode::kDraining, "drain in progress");
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const std::string prefix = payload.substr(0, len);
    EXPECT_FALSE(decode_error_payload(prefix))
        << "prefix of length " << len << " decoded";
  }
  const auto full = decode_error_payload(payload);
  ASSERT_TRUE(full);
  EXPECT_EQ(full->code, ErrorCode::kDraining);
  EXPECT_EQ(full->text, "drain in progress");
}

// ---------------------------------------------------------------------------
// Socket level.
// ---------------------------------------------------------------------------

std::string trunc_socket_path() {
  static int counter = 0;
  return "/tmp/lrb_trunc_t" + std::to_string(getpid()) + "_" +
         std::to_string(counter++) + ".sock";
}

class TruncServer {
 public:
  TruncServer() {
    path_ = trunc_socket_path();
    ServerOptions options;
    options.unix_path = path_;
    options.metrics = &registry_;
    options.engine.workers = 2;
    server_ = std::make_unique<Server>(std::move(options));
    std::string error;
    if (!server_->start(&error)) {
      ADD_FAILURE() << "server start failed: " << error;
      return;
    }
    runner_ = std::thread([this] { server_->run(); });
  }

  ~TruncServer() {
    if (runner_.joinable()) {
      server_->notify_signal();
      runner_.join();
    }
    unlink(path_.c_str());
  }

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  obs::Registry registry_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
};

/// Writes `bytes` then disconnects; then proves the server still answers a
/// well-formed Ping on a fresh connection (nothing wedged, nothing leaked
/// into another connection's stream).
void truncate_then_ping(TruncServer& ts, std::string_view bytes,
                        std::uint64_t probe_id) {
  std::string error;
  {
    auto torn = Client::connect_unix(ts.path(), &error);
    ASSERT_TRUE(torn) << error;
    ASSERT_TRUE(torn->send_bytes(bytes, &error)) << error;
  }  // abrupt disconnect mid-frame
  auto probe = Client::connect_unix(ts.path(), &error);
  ASSERT_TRUE(probe) << error;
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(probe->call(MsgType::kPing, probe_id, "probe", &header,
                          &payload, &error))
      << error;
  EXPECT_EQ(header.type, MsgType::kPong);
  EXPECT_EQ(header.request_id, probe_id);
}

TEST(WireTruncation, ServerSurvivesSmallFramesTruncatedAtEveryOffset) {
  TruncServer ts;
  std::uint64_t probe_id = 1;
  for (const auto& [type, payload] : all_frame_payloads()) {
    std::string frame;
    encode_frame(frame, type, 7, payload);
    if (frame.size() > 96) continue;  // the Solve/SolveOk sweep is below
    for (std::size_t len = 0; len < frame.size(); ++len) {
      truncate_then_ping(ts, std::string_view(frame).substr(0, len),
                         probe_id++);
      if (HasFatalFailure()) return;
    }
  }
}

TEST(WireTruncation, ServerSurvivesTruncatedSolveFrames) {
  TruncServer ts;
  std::string frame;
  encode_frame(frame, MsgType::kSolve, 7,
               encode_solve_request(sample_solve_request()));
  // Every header boundary, then probes through the payload: the decoder
  // state machine only changes shape at the header/payload transition, so
  // stepping the payload in strides keeps the sweep fast while still
  // covering both sides of every interesting boundary.
  std::vector<std::size_t> offsets;
  for (std::size_t len = 0; len <= kHeaderSize + 8; ++len) {
    offsets.push_back(len);
  }
  for (std::size_t len = kHeaderSize + 8; len < frame.size(); len += 7) {
    offsets.push_back(len);
  }
  offsets.push_back(frame.size() - 1);
  std::uint64_t probe_id = 1000;
  for (const std::size_t len : offsets) {
    truncate_then_ping(ts, std::string_view(frame).substr(0, len),
                       probe_id++);
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace lrb::svc
