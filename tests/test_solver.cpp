// Contract battery for the solver backend registry (src/solver/,
// docs/solvers.md): name/alias/wire-id round-trips, the wire-id stability
// policy (unique, append-only, never reused), parameter validation,
// cache-key encoding distinctness and normalization, and the dispatch
// switch staying faithful to the library entry points for the backends
// that are NOT covered by the legacy engine/service suites (lpt,
// local-search).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "algo/local_search.h"
#include "algo/lpt.h"
#include "core/assignment.h"
#include "core/generators.h"
#include "core/instance.h"
#include "solver/registry.h"
#include "util/thread_pool.h"

namespace lrb {
namespace {

using solver::BackendId;
using solver::SolverSpec;

void expect_same(const RebalanceResult& got, const RebalanceResult& want,
                 const std::string& label) {
  EXPECT_EQ(got.assignment, want.assignment) << label;
  EXPECT_EQ(got.makespan, want.makespan) << label;
  EXPECT_EQ(got.moves, want.moves) << label;
  EXPECT_EQ(got.cost, want.cost) << label;
  EXPECT_EQ(got.threshold, want.threshold) << label;
}

TEST(SolverRegistry, EveryBackendIdHasADescriptor) {
  const auto backends = solver::all_backends();
  ASSERT_EQ(backends.size(), solver::kNumBackends);
  for (std::size_t i = 0; i < backends.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(backends[i].id), i)
        << "descriptor table out of BackendId order at slot " << i;
    EXPECT_STRNE(backends[i].name, "") << "slot " << i;
    EXPECT_NE(backends[i].validate, nullptr) << backends[i].name;
    EXPECT_NE(backends[i].serial, nullptr) << backends[i].name;
  }
}

TEST(SolverRegistry, NamesAndAliasesRoundTrip) {
  for (const auto& backend : solver::all_backends()) {
    BackendId parsed{};
    ASSERT_TRUE(solver::parse_backend(backend.name, &parsed)) << backend.name;
    EXPECT_EQ(parsed, backend.id) << backend.name;
    EXPECT_STREQ(solver::backend_name(backend.id), backend.name);
    for (const auto alias : backend.aliases) {
      BackendId via_alias{};
      ASSERT_TRUE(solver::parse_backend(alias, &via_alias)) << alias;
      EXPECT_EQ(via_alias, backend.id) << alias;
    }
  }
  // The documented alias table (docs/solvers.md) resolves as promised.
  const struct {
    const char* alias;
    BackendId want;
  } aliases[] = {{"mpartition", BackendId::kMPartition},
                 {"best", BackendId::kBestOf},
                 {"bestof", BackendId::kBestOf},
                 {"lpt-full", BackendId::kLpt},
                 {"ls", BackendId::kLocalSearch},
                 {"mp-ls", BackendId::kLocalSearch}};
  for (const auto& alias : aliases) {
    BackendId parsed{};
    ASSERT_TRUE(solver::parse_backend(alias.alias, &parsed)) << alias.alias;
    EXPECT_EQ(parsed, alias.want) << alias.alias;
  }
}

TEST(SolverRegistry, UnknownNamesAreRejectedAndDoNotTouchOut) {
  for (const char* bad : {"nope", "", "GREEDY", "best_of", "m partition",
                          "greedy ", " ptas", "ptas2", "LPT", "local search"}) {
    BackendId parsed = BackendId::kPtas;
    EXPECT_FALSE(solver::parse_backend(bad, &parsed)) << "'" << bad << "'";
    EXPECT_EQ(parsed, BackendId::kPtas) << "'" << bad << "'";
  }
}

TEST(SolverRegistry, WireIdsAreUniqueStableAndNeverReused) {
  // The stability policy (docs/solvers.md): a backend's wire id is its
  // enumerator value, the first four match the retired engine::Algo byte
  // values, and ids are append-only. Renumbering any entry breaks every
  // pinned wire frame and cache key — this test is the tripwire.
  std::set<std::uint8_t> seen;
  for (const auto& backend : solver::all_backends()) {
    EXPECT_TRUE(seen.insert(backend.wire_id).second)
        << "duplicate wire id " << int{backend.wire_id};
    EXPECT_EQ(backend.wire_id, static_cast<std::uint8_t>(backend.id))
        << backend.name;
  }
  EXPECT_EQ(solver::descriptor(BackendId::kGreedy).wire_id, 0);
  EXPECT_EQ(solver::descriptor(BackendId::kMPartition).wire_id, 1);
  EXPECT_EQ(solver::descriptor(BackendId::kBestOf).wire_id, 2);
  EXPECT_EQ(solver::descriptor(BackendId::kPtas).wire_id, 3);
  EXPECT_EQ(solver::descriptor(BackendId::kLpt).wire_id, 4);
  EXPECT_EQ(solver::descriptor(BackendId::kLocalSearch).wire_id, 5);
}

TEST(SolverRegistry, WireIdLookupCoversExactlyTheRegisteredIds) {
  for (const auto& backend : solver::all_backends()) {
    const auto* found = solver::backend_by_wire_id(backend.wire_id);
    ASSERT_NE(found, nullptr) << backend.name;
    EXPECT_EQ(found->id, backend.id);
    EXPECT_TRUE(solver::is_valid_wire_id(backend.wire_id));
  }
  for (int id = static_cast<int>(solver::kNumBackends); id <= 255; ++id) {
    EXPECT_EQ(solver::backend_by_wire_id(static_cast<std::uint8_t>(id)),
              nullptr)
        << id;
    EXPECT_FALSE(solver::is_valid_wire_id(static_cast<std::uint8_t>(id)));
  }
}

TEST(SolverRegistry, BackendListJoinsEveryCanonicalName) {
  EXPECT_EQ(solver::backend_list(),
            "greedy|m-partition|best-of|ptas|lpt|local-search");
}

TEST(SolverRegistry, ValidateSpecRejectsOutOfBoundsParams) {
  for (const auto& backend : solver::all_backends()) {
    SolverSpec spec(backend.id);
    EXPECT_FALSE(solver::validate_spec(spec).has_value()) << backend.name;

    spec = SolverSpec(backend.id, {.eps = 0.0});
    EXPECT_TRUE(solver::validate_spec(spec).has_value()) << backend.name;
    spec = SolverSpec(backend.id, {.eps = -0.5});
    EXPECT_TRUE(solver::validate_spec(spec).has_value()) << backend.name;
    spec = SolverSpec(
        backend.id, {.eps = std::numeric_limits<double>::quiet_NaN()});
    EXPECT_TRUE(solver::validate_spec(spec).has_value()) << backend.name;
    spec = SolverSpec(backend.id,
                      {.eps = std::numeric_limits<double>::infinity()});
    EXPECT_TRUE(solver::validate_spec(spec).has_value()) << backend.name;
    spec = SolverSpec(backend.id, {.budget = -1});
    EXPECT_TRUE(solver::validate_spec(spec).has_value()) << backend.name;

    spec = SolverSpec(backend.id, {.budget = 0, .eps = 0.25});
    EXPECT_FALSE(solver::validate_spec(spec).has_value()) << backend.name;
  }
}

TEST(SolverRegistry, CacheKeyParamsSeparateBackendsAndConsumedKnobs) {
  const auto key_of = [](const SolverSpec& spec) {
    std::string out;
    solver::encode_key_params(spec, &out);
    return out;
  };
  // Distinct backends never share a key, whatever the params.
  std::set<std::string> keys;
  for (const auto& backend : solver::all_backends()) {
    EXPECT_TRUE(keys.insert(key_of(SolverSpec(backend.id))).second)
        << backend.name;
  }
  // PTAS consumes budget and eps: each distinct value is a distinct key.
  EXPECT_NE(key_of(SolverSpec(BackendId::kPtas, {.eps = 0.5})),
            key_of(SolverSpec(BackendId::kPtas, {.eps = 0.25})));
  EXPECT_NE(key_of(SolverSpec(BackendId::kPtas, {.budget = 7})),
            key_of(SolverSpec(BackendId::kPtas, {.budget = 8})));
  // Backends that ignore the knobs normalize them away: one shared entry
  // across every budget/eps value (docs/caching.md).
  for (const BackendId backend :
       {BackendId::kGreedy, BackendId::kMPartition, BackendId::kBestOf,
        BackendId::kLpt, BackendId::kLocalSearch}) {
    EXPECT_EQ(key_of(SolverSpec(backend, {.budget = 123, .eps = 0.125})),
              key_of(SolverSpec(backend)))
        << solver::backend_name(backend);
    const solver::SolverParams norm =
        solver::normalized_params(SolverSpec(backend, {.budget = 9, .eps = 2}));
    EXPECT_EQ(norm, solver::SolverParams{})
        << solver::backend_name(backend);
  }
  // And the key layout is fixed-width: backend byte + two u64 fields.
  EXPECT_EQ(key_of(SolverSpec(BackendId::kPtas)).size(), 1u + 8u + 8u);
}

TEST(SolverRegistry, NewBackendsMatchTheirLibraryEntryPoints) {
  // The dispatch switch must be faithful: registry solves of the two
  // registry-born backends equal the direct library calls, serial and
  // under a forced-parallel context alike. (greedy/m-partition/best-of/
  // ptas get the same treatment in test_engine.cpp.)
  ThreadPool pool(4);
  solver::SolveContext ctx;
  ctx.pool = &pool;
  ctx.intra_parallel_min_jobs = 1;  // force the parallel scan paths
  for (std::size_t index = 0; index < 12; ++index) {
    const Instance instance = mixed_corpus_instance(index, 0x501fe4);
    const std::int64_t k = static_cast<std::int64_t>(index % 5) + 1;
    const std::string label = "corpus " + std::to_string(index);

    const RebalanceResult lpt =
        solver::solve_serial(BackendId::kLpt, instance, k);
    expect_same(lpt, lpt_schedule(instance), "lpt " + label);
    expect_same(solver::solve(BackendId::kLpt, instance, k, ctx), lpt,
                "lpt ctx " + label);

    const RebalanceResult ls =
        solver::solve_serial(BackendId::kLocalSearch, instance, k);
    expect_same(ls, m_partition_ls_rebalance(instance, k), "ls " + label);
    expect_same(solver::solve(BackendId::kLocalSearch, instance, k, ctx), ls,
                "ls ctx " + label);

    // Capability flags tell the truth: lpt reassigns from scratch (ignores
    // k), local-search honors the k-move bound.
    EXPECT_FALSE(solver::descriptor(BackendId::kLpt).respects_k);
    EXPECT_TRUE(solver::descriptor(BackendId::kLocalSearch).respects_k);
    EXPECT_LE(ls.moves, std::max<std::int64_t>(k, 0)) << label;
  }
}

TEST(SolverRegistry, DescriptorSerialHookEqualsSolveSerial) {
  for (const auto& backend : solver::all_backends()) {
    if (backend.id == BackendId::kPtas) continue;  // costly; covered above
    const Instance instance = mixed_corpus_instance(3, 0x5e41a1);
    const SolverSpec spec(backend.id);
    expect_same(backend.serial(instance, 4, spec.params),
                solver::solve_serial(spec, instance, 4), backend.name);
  }
}

}  // namespace
}  // namespace lrb
