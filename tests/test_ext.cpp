// Tests for the §5 extensions: 3DM, the hardness gadgets (Theorems 5-7,
// Corollary 1), constrained rebalancing, and conflict scheduling. The core
// property everywhere: yes-instances of the source problem hit the small
// objective, no-instances provably cannot - the exact gap behind each
// inapproximability result.

#include <gtest/gtest.h>

#include <algorithm>

#include "algo/move_min.h"
#include "ext/conflict.h"
#include "ext/constrained.h"
#include "ext/gadgets.h"
#include "ext/threedm.h"
#include "core/generators.h"
#include "util/rng.h"

namespace lrb {
namespace {

// --------------------------------------------------------------------- 3dm

TEST(ThreeDm, MatchableInstancesSolve) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto inst = random_matchable_3dm(5, 8, seed);
    const auto matching = solve_3dm(inst);
    ASSERT_TRUE(matching.has_value()) << "seed=" << seed;
    EXPECT_TRUE(is_perfect_matching(inst, *matching));
  }
}

TEST(ThreeDm, UnmatchableInstancesFail) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto inst = unmatchable_3dm(5, 20, seed);
    EXPECT_FALSE(solve_3dm(inst).has_value()) << "seed=" << seed;
  }
}

TEST(ThreeDm, TrivialCases) {
  ThreeDmInstance inst;
  inst.n = 1;
  inst.triples = {{0, 0, 0}};
  ASSERT_TRUE(solve_3dm(inst).has_value());
  inst.triples.clear();
  EXPECT_FALSE(solve_3dm(inst).has_value());
}

TEST(ThreeDm, IsPerfectMatchingRejectsOverlaps) {
  ThreeDmInstance inst;
  inst.n = 2;
  inst.triples = {{0, 0, 0}, {1, 0, 1}, {1, 1, 1}};
  EXPECT_FALSE(is_perfect_matching(inst, {0, 1}));  // share b = 0
  EXPECT_TRUE(is_perfect_matching(inst, {0, 2}));
  EXPECT_FALSE(is_perfect_matching(inst, {0}));  // wrong cardinality
}

// ---------------------------------------------------- Theorem 5 (move-min)

TEST(MoveMinGadget, YesInstanceSplitsEvenly) {
  // {3, 5, 8, 4} -> subset {3, 5} + {8} vs... total 20, half 10: no subset?
  // {8, 4, 5, 3}: 8+... 8-only=8, 8+3=11; {5,4}=9... pick a clean yes:
  // {3, 5, 8, 4, 2}? Use {1, 2, 3, 4}: half = 5 = {1, 4} = {2, 3}.
  const auto gadget = move_min_gadget({1, 2, 3, 4});
  EXPECT_EQ(gadget.target_load, 5);
  const auto exact = minimize_moves_exact(gadget.instance, gadget.target_load);
  ASSERT_TRUE(exact.feasible);
  ASSERT_TRUE(exact.proven_optimal);
  EXPECT_EQ(exact.best.moves, 2);  // the smaller side of a {1,4}/{2,3} split
  const auto l = loads(gadget.instance, exact.best.assignment);
  EXPECT_EQ(l[0], 5);
  EXPECT_EQ(l[1], 5);
}

TEST(MoveMinGadget, NoInstanceIsInfeasible) {
  // {3, 3, 5, 5} sums to 16, half = 8, but no subset hits 8 exactly
  // (3, 5, 6, 8? 3+5=8!). Use {1, 1, 1, 5}: total 8, half 4, subsets:
  // 1,2,3,5,6,7,8 - no 4.
  const auto gadget = move_min_gadget({1, 1, 1, 5});
  EXPECT_EQ(gadget.target_load, 4);
  const auto exact = minimize_moves_exact(gadget.instance, gadget.target_load);
  EXPECT_FALSE(exact.feasible);
}

TEST(MoveMinGadget, RandomPartitionInstancesMatchSubsetSum) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Size> numbers(6);
    for (auto& v : numbers) v = rng.uniform_int(1, 9);
    Size total = 0;
    for (Size v : numbers) total += v;
    if (total % 2 != 0) continue;
    // Brute-force PARTITION.
    bool yes = false;
    for (std::uint32_t mask = 0; mask < (1u << 6); ++mask) {
      Size sum = 0;
      for (std::size_t i = 0; i < 6; ++i) {
        if (mask >> i & 1u) sum += numbers[i];
      }
      if (sum == total / 2) yes = true;
    }
    const auto gadget = move_min_gadget(numbers);
    const auto exact = minimize_moves_exact(gadget.instance, gadget.target_load);
    EXPECT_EQ(exact.feasible, yes) << "trial " << trial;
  }
}

// ------------------------------------------------- Theorem 6 ({p, q} costs)

TEST(TwoCostGadget, MatchableMeansMakespanTwo) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto source = random_matchable_3dm(3, 2, seed);
    const auto gadget = two_cost_gadget(source, 1, 100);
    const auto exact = gap_exact_min_makespan(gadget.gap, gadget.budget);
    ASSERT_TRUE(exact.proven_optimal) << "seed=" << seed;
    ASSERT_TRUE(exact.feasible);
    EXPECT_EQ(exact.makespan, gadget.yes_makespan) << "seed=" << seed;
  }
}

TEST(TwoCostGadget, UnmatchableMeansAtLeastThree) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto source = unmatchable_3dm(3, 6, seed);
    ASSERT_FALSE(solve_3dm(source).has_value());
    const auto gadget = two_cost_gadget(source, 1, 100);
    const auto exact = gap_exact_min_makespan(gadget.gap, gadget.budget);
    ASSERT_TRUE(exact.proven_optimal) << "seed=" << seed;
    if (exact.feasible) {
      EXPECT_GE(exact.makespan, 3) << "seed=" << seed;
    }
  }
}

TEST(TwoCostGadget, ShapeMatchesReduction) {
  const auto source = random_matchable_3dm(3, 3, 1);
  const auto m = source.triples.size();
  const auto gadget = two_cost_gadget(source, 2, 50);
  // 2n element jobs + (m - n) dummies.
  EXPECT_EQ(gadget.gap.num_jobs(), 2 * 3 + (m - 3));
  EXPECT_EQ(gadget.gap.num_machines(), m);
  EXPECT_EQ(gadget.budget, static_cast<Cost>(m + 3) * 2);
  // Every cost is p or q.
  for (const auto& row : gadget.gap.cost) {
    for (Cost c : row) EXPECT_TRUE(c == 2 || c == 50);
  }
}

// --------------------------------------------- Corollary 1 (constrained)

TEST(Constrained, ValidateCatchesShapeErrors) {
  ConstrainedInstance inst;
  inst.base = make_instance({3, 4}, {0, 0}, 2);
  inst.allowed = {{1, 1}};  // one row short
  EXPECT_TRUE(validate(inst).has_value());
  inst.allowed = {{1, 1}, {1, 1}};
  EXPECT_FALSE(validate(inst).has_value());
}

TEST(Constrained, GreedyRespectsAllowedSets) {
  ConstrainedInstance inst;
  inst.base = make_instance({9, 8, 7, 1}, {0, 0, 0, 1}, 3);
  inst.allowed.assign(4, std::vector<char>(3, 0));
  inst.allowed[0][0] = 1;          // job 0 pinned home
  inst.allowed[1][1] = 1;          // job 1 may go to P1 only
  inst.allowed[2][1] = 1;          // job 2 may go to P1 only (not P2!)
  inst.allowed[3][2] = 1;          // job 3 may go to P2
  const auto result = constrained_greedy(inst, 4);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_TRUE(inst.job_allowed_on(static_cast<JobId>(j),
                                    result.assignment[j]));
  }
}

TEST(Constrained, ExactBeatsOrMatchesGreedy) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    ConstrainedInstance inst;
    GeneratorOptions opt;
    opt.num_jobs = 8;
    opt.num_procs = 3;
    opt.placement = PlacementPolicy::kHotspot;
    inst.base = random_instance(opt, static_cast<std::uint64_t>(trial));
    inst.allowed.assign(8, std::vector<char>(3, 0));
    for (auto& row : inst.allowed) {
      for (auto& cell : row) cell = rng.bernoulli(0.6) ? 1 : 0;
    }
    const auto greedy = constrained_greedy(inst, 4);
    const auto exact = constrained_exact(inst, 4);
    ASSERT_TRUE(exact.proven_optimal);
    EXPECT_LE(exact.best.makespan, greedy.makespan) << "trial " << trial;
    EXPECT_LE(exact.best.moves, 4);
  }
}

TEST(ConstrainedGadget, MatchableMeansMakespanTwo) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto source = random_matchable_3dm(3, 2, seed);
    const auto gadget = constrained_gadget(source);
    ASSERT_FALSE(validate(gadget.instance).has_value());
    const auto n_jobs =
        static_cast<std::int64_t>(gadget.instance.base.num_jobs());
    const auto exact = constrained_exact(gadget.instance, n_jobs);
    ASSERT_TRUE(exact.proven_optimal) << "seed=" << seed;
    EXPECT_EQ(exact.best.makespan, gadget.yes_makespan) << "seed=" << seed;
  }
}

TEST(ConstrainedGadget, UnmatchableMeansAtLeastThree) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto source = unmatchable_3dm(3, 6, seed);
    const auto gadget = constrained_gadget(source);
    const auto n_jobs =
        static_cast<std::int64_t>(gadget.instance.base.num_jobs());
    const auto exact = constrained_exact(gadget.instance, n_jobs);
    ASSERT_TRUE(exact.proven_optimal) << "seed=" << seed;
    EXPECT_GE(exact.best.makespan, 3) << "seed=" << seed;
  }
}

// ----------------------------------------------- Theorem 7 (conflicts)

TEST(Conflict, RespectsConflictsChecker) {
  ConflictInstance inst;
  inst.sizes = {1, 1, 1};
  inst.num_machines = 2;
  inst.conflicts = {{0, 1}};
  EXPECT_TRUE(respects_conflicts(inst, {0, 1, 0}));
  EXPECT_FALSE(respects_conflicts(inst, {0, 0, 1}));
}

TEST(Conflict, ExactFindsOptimalColoring) {
  // Triangle of conflicts on 3 machines: forced spread, makespan = max size.
  ConflictInstance inst;
  inst.sizes = {5, 4, 3};
  inst.num_machines = 3;
  inst.conflicts = {{0, 1}, {1, 2}, {0, 2}};
  const auto exact = conflict_exact(inst);
  ASSERT_TRUE(exact.feasible);
  EXPECT_EQ(exact.makespan, 5);
}

TEST(Conflict, ExactDetectsInfeasible) {
  // Triangle on 2 machines: impossible.
  ConflictInstance inst;
  inst.sizes = {1, 1, 1};
  inst.num_machines = 2;
  inst.conflicts = {{0, 1}, {1, 2}, {0, 2}};
  EXPECT_FALSE(conflict_exact(inst).feasible);
  EXPECT_FALSE(conflict_first_fit(inst).has_value());
}

TEST(Conflict, FirstFitOutputValidWhenItSucceeds) {
  ConflictInstance inst;
  inst.sizes = {4, 3, 2, 2, 1};
  inst.num_machines = 3;
  inst.conflicts = {{0, 1}, {2, 3}};
  const auto ff = conflict_first_fit(inst);
  ASSERT_TRUE(ff.has_value());
  EXPECT_TRUE(respects_conflicts(inst, *ff));
}

TEST(ConflictGadget, FeasibleIffMatchable) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto yes_source = random_matchable_3dm(3, 1, seed);
    const auto yes_gadget = conflict_gadget(yes_source);
    const auto yes = conflict_exact(yes_gadget.instance);
    ASSERT_TRUE(yes.proven) << "seed=" << seed;
    EXPECT_TRUE(yes.feasible) << "seed=" << seed;

    const auto no_source = unmatchable_3dm(3, 5, seed);
    const auto no_gadget = conflict_gadget(no_source);
    const auto no = conflict_exact(no_gadget.instance);
    ASSERT_TRUE(no.proven) << "seed=" << seed;
    EXPECT_FALSE(no.feasible) << "seed=" << seed;
  }
}

TEST(ConflictGadget, ShapeMatchesReduction) {
  const auto source = random_matchable_3dm(3, 2, 0);
  const auto m = source.triples.size();
  const auto gadget = conflict_gadget(source);
  EXPECT_EQ(gadget.instance.num_machines, m);
  EXPECT_EQ(gadget.instance.num_jobs(), m + 3 * 3 + (m - 3));
}

}  // namespace
}  // namespace lrb

namespace lrb {
namespace {

TEST(ConstrainedSt, TwoApproxAgainstExactWithBudget) {
  Rng rng(71);
  for (int trial = 0; trial < 10; ++trial) {
    ConstrainedInstance inst;
    GeneratorOptions opt;
    opt.num_jobs = 8;
    opt.num_procs = 3;
    opt.max_size = 15;
    opt.placement = PlacementPolicy::kHotspot;
    inst.base = random_instance(opt, static_cast<std::uint64_t>(100 + trial));
    inst.allowed.assign(8, std::vector<char>(3, 0));
    for (auto& row : inst.allowed) {
      for (auto& cell : row) cell = rng.bernoulli(0.5) ? 1 : 0;
    }
    for (std::int64_t k : {2, 5}) {
      const auto exact = constrained_exact(inst, k);
      ASSERT_TRUE(exact.proven_optimal) << "trial " << trial;
      const auto st = constrained_st_rebalance(inst, k);
      EXPECT_LE(st.cost, k) << "trial " << trial;
      EXPECT_LE(st.makespan, 2 * exact.best.makespan)
          << "trial " << trial << " k=" << k;
      // Every ST placement respects the allowed sets.
      for (std::size_t j = 0; j < 8; ++j) {
        EXPECT_TRUE(inst.job_allowed_on(static_cast<JobId>(j),
                                        st.assignment[j]))
            << "trial " << trial;
      }
    }
  }
}

TEST(ConstrainedSt, FullyRestrictedIsIdentity) {
  // No job may go anywhere but home: the LP has only the home variables.
  ConstrainedInstance inst;
  inst.base = make_instance({7, 4, 2}, {0, 0, 1}, 2);
  inst.allowed.assign(3, std::vector<char>(2, 0));
  const auto st = constrained_st_rebalance(inst, 10);
  EXPECT_EQ(st.assignment, inst.base.initial);
  EXPECT_EQ(st.makespan, inst.base.initial_makespan());
}

TEST(ConstrainedSt, SolvesTheGadgetWithinFactorTwo) {
  const auto source = random_matchable_3dm(3, 2, 5);
  const auto gadget = constrained_gadget(source);
  const auto n_jobs =
      static_cast<std::int64_t>(gadget.instance.base.num_jobs());
  const auto st = constrained_st_rebalance(gadget.instance, n_jobs);
  // OPT = 2 on matchable gadgets, so ST must land at most 4.
  EXPECT_LE(st.makespan, 4);
}

}  // namespace
}  // namespace lrb
