// Tests for the online scheduler: Graham placement, departures, rebalancing
// hooks, and the competitive behaviour the paper's dynamic setting predicts.

#include <gtest/gtest.h>

#include <algorithm>

#include "algo/m_partition.h"
#include "algo/rebalancer.h"
#include "online/scheduler.h"
#include "online/trace.h"

namespace lrb::online {
namespace {

// -------------------------------------------------------------------- trace

TEST(Trace, WellFormedAcrossSeeds) {
  TraceOptions opt;
  opt.num_events = 500;
  opt.departure_fraction = 0.45;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto trace = random_trace(opt, seed);
    EXPECT_EQ(trace.size(), 500u);
    EXPECT_TRUE(trace_is_well_formed(trace)) << "seed=" << seed;
  }
}

TEST(Trace, DeterministicInSeed) {
  TraceOptions opt;
  const auto a = random_trace(opt, 7);
  const auto b = random_trace(opt, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].size, b[i].size);
    EXPECT_EQ(a[i].arrival_index, b[i].arrival_index);
  }
}

TEST(Trace, ZeroDepartureFractionIsAllArrivals) {
  TraceOptions opt;
  opt.num_events = 100;
  opt.departure_fraction = 0.0;
  const auto trace = random_trace(opt, 3);
  for (const auto& event : trace) EXPECT_EQ(event.kind, EventKind::kArrive);
}

TEST(Trace, WellFormedRejectsBadTraces) {
  std::vector<Event> bad;
  Event depart;
  depart.kind = EventKind::kDepart;
  depart.arrival_index = 0;
  bad.push_back(depart);  // departs before any arrival
  EXPECT_FALSE(trace_is_well_formed(bad));

  std::vector<Event> twice;
  Event arrive;
  arrive.kind = EventKind::kArrive;
  arrive.arrival_index = 0;
  twice.push_back(arrive);
  twice.push_back(depart);
  twice.push_back(depart);  // departs the same job twice
  EXPECT_FALSE(trace_is_well_formed(twice));
}

// ---------------------------------------------------------------- scheduler

TEST(Scheduler, GrahamPlacementOnArrival) {
  OnlineScheduler scheduler(3);
  scheduler.on_arrive(5);  // -> P0
  scheduler.on_arrive(3);  // -> least loaded (P1)
  scheduler.on_arrive(2);  // -> P2
  scheduler.on_arrive(1);  // -> P2 (load 2 < 3 < 5)? P2 has 2 -> yes
  EXPECT_EQ(scheduler.loads(), (std::vector<Size>{5, 3, 3}));
  EXPECT_EQ(scheduler.makespan(), 5);
  EXPECT_EQ(scheduler.num_alive(), 4u);
}

TEST(Scheduler, DeparturesFreeLoadAndHandlesAreReused) {
  OnlineScheduler scheduler(2);
  const auto a = scheduler.on_arrive(10);
  const auto b = scheduler.on_arrive(4);
  scheduler.on_depart(a);
  EXPECT_EQ(scheduler.num_alive(), 1u);
  EXPECT_EQ(scheduler.makespan(), 4);
  const auto c = scheduler.on_arrive(6);
  EXPECT_EQ(c, a);  // slot reuse
  EXPECT_EQ(scheduler.makespan(), 6);
  (void)b;
}

TEST(Scheduler, SnapshotReflectsAliveJobsOnly) {
  OnlineScheduler scheduler(2);
  const auto a = scheduler.on_arrive(7, 3);
  scheduler.on_arrive(5, 2);
  scheduler.on_depart(a);
  std::vector<std::size_t> handles;
  const auto snap = scheduler.snapshot(&handles);
  ASSERT_EQ(snap.num_jobs(), 1u);
  EXPECT_EQ(snap.sizes[0], 5);
  EXPECT_EQ(snap.move_costs[0], 2);
  EXPECT_EQ(handles.size(), 1u);
}

TEST(Scheduler, PureArrivalsStayWithinGrahamBound) {
  // Without departures, list scheduling is (2 - 1/m)-competitive against
  // the offline bound.
  TraceOptions opt;
  opt.num_events = 300;
  opt.departure_fraction = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    OnlineScheduler scheduler(5);
    for (const auto& event : random_trace(opt, seed)) {
      scheduler.on_arrive(event.size, event.move_cost);
      const double bound =
          (2.0 - 1.0 / 5.0) * static_cast<double>(scheduler.offline_bound());
      EXPECT_LE(static_cast<double>(scheduler.makespan()), bound + 1e-9);
    }
  }
}

TEST(Scheduler, DeparturesErodeBalanceRebalancingRestoresIt) {
  // With biased departures, the never-rebalanced run drifts away from the
  // offline bound; M-PARTITION with a small budget every 25 events keeps
  // the MEAN tracking ratio strictly better across seeds.
  TraceOptions opt;
  opt.num_events = 600;
  opt.departure_fraction = 0.45;
  opt.bias_large_departures = true;
  double managed_mean_total = 0, unmanaged_mean_total = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto trace = random_trace(opt, seed);
    OnlineScheduler managed(6);
    OnlineScheduler unmanaged(6);
    std::vector<std::size_t> managed_handles, unmanaged_handles;
    std::size_t events_seen = 0;
    double managed_sum = 0, unmanaged_sum = 0;
    std::size_t samples = 0;
    for (const auto& event : trace) {
      if (event.kind == EventKind::kArrive) {
        managed_handles.push_back(
            managed.on_arrive(event.size, event.move_cost));
        unmanaged_handles.push_back(
            unmanaged.on_arrive(event.size, event.move_cost));
      } else {
        managed.on_depart(managed_handles[event.arrival_index]);
        unmanaged.on_depart(unmanaged_handles[event.arrival_index]);
      }
      ++events_seen;
      if (events_seen % 25 == 0 && managed.num_alive() > 0) {
        const auto result = managed.rebalance(
            [](const Instance& inst, std::int64_t k) {
              return m_partition_rebalance(inst, k);
            },
            4);
        EXPECT_LE(result.moves, 4);
      }
      if (managed.num_alive() > 0) {
        managed_sum += static_cast<double>(managed.makespan()) /
                       static_cast<double>(managed.offline_bound());
        unmanaged_sum += static_cast<double>(unmanaged.makespan()) /
                         static_cast<double>(unmanaged.offline_bound());
        ++samples;
      }
    }
    ASSERT_GT(samples, 0u);
    managed_mean_total += managed_sum / static_cast<double>(samples);
    unmanaged_mean_total += unmanaged_sum / static_cast<double>(samples);
  }
  EXPECT_LT(managed_mean_total, unmanaged_mean_total);
}

TEST(Scheduler, RebalanceAppliesAssignmentAndCountsMoves) {
  OnlineScheduler scheduler(3);
  // Pile everything implicitly: arrivals alternate but departures will
  // concentrate load. Build a lopsided state by hand:
  const auto a = scheduler.on_arrive(9);
  const auto b = scheduler.on_arrive(8);
  const auto c = scheduler.on_arrive(7);
  scheduler.on_depart(b);
  scheduler.on_depart(c);
  scheduler.on_arrive(9);  // joins an empty proc
  scheduler.on_arrive(9);
  (void)a;
  const Size before = scheduler.makespan();
  const auto result = scheduler.rebalance(
      [](const Instance& inst, std::int64_t k) {
        return m_partition_rebalance(inst, k);
      },
      2);
  EXPECT_LE(result.moves, 2);
  EXPECT_LE(scheduler.makespan(), before);
  EXPECT_EQ(scheduler.makespan(), result.makespan);
}

}  // namespace
}  // namespace lrb::online
