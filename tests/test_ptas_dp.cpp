// Tests for the packed-state PTAS DP engine (algo/ptas.*): packed-key and
// flat-hash units, bit-identical parity with the retained reference DP
// (check/ptas_reference), budget-boundary accept/reject decisions,
// state-count regression on a pinned corpus, and the allocation-free
// steady-state contract of PtasScratch.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "algo/ptas.h"
#include "check/ptas_reference.h"
#include "core/generators.h"
#include "util/flat_hash.h"
#include "util/packed_key.h"
#include "util/rng.h"
#include "util/thread_pool.h"

// ---- allocation-counting hook (whole test binary) -------------------------
// Counts every operator-new in the process; tests read the delta around the
// region of interest. Only the non-aligned forms are replaced - the library
// containers used by the DP never over-align.

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace lrb {
namespace {

// ---- packed keys ----------------------------------------------------------

TEST(PackedKey, TightLayoutRoundTrips) {
  PackedKeyCodec codec;
  const std::vector<std::int64_t> maxima{7, 0, 1, 100, 1'000'000};
  codec.plan(maxima);
  EXPECT_FALSE(codec.byte_aligned());
  EXPECT_EQ(codec.words(), 1u);  // 3 + 0 + 1 + 7 + 20 = 31 bits
  const std::vector<std::int64_t> values{5, 0, 1, 99, 999'999};
  std::uint64_t words[2] = {~0ull, ~0ull};
  codec.encode(values, words);
  std::vector<std::int64_t> decoded(values.size());
  codec.decode(words, decoded);
  EXPECT_EQ(decoded, values);
}

TEST(PackedKey, FieldsSpanWordBoundaries) {
  PackedKeyCodec codec;
  // 40 + 40 + 40 = 120 bits: the second and third fields straddle word 0/1.
  const std::int64_t big = (std::int64_t{1} << 40) - 1;
  const std::vector<std::int64_t> maxima{big, big, big};
  codec.plan(maxima);
  EXPECT_FALSE(codec.byte_aligned());
  EXPECT_EQ(codec.words(), 2u);
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<std::int64_t> values{
        rng.uniform_int(0, big), rng.uniform_int(0, big),
        rng.uniform_int(0, big)};
    std::uint64_t words[2];
    codec.encode(values, words);
    std::vector<std::int64_t> decoded(3);
    codec.decode(words, decoded);
    EXPECT_EQ(decoded, values);
  }
}

TEST(PackedKey, OverflowFallsBackToByteAlignment) {
  PackedKeyCodec codec;
  // 20 fields x 13 bits = 260 bits > 128: byte-aligned fallback (16 bits
  // per field, 5 words).
  const std::vector<std::int64_t> maxima(20, (1 << 13) - 1);
  codec.plan(maxima);
  EXPECT_TRUE(codec.byte_aligned());
  EXPECT_EQ(codec.words(), 5u);
  Rng rng(7);
  std::vector<std::int64_t> values(20);
  for (auto& v : values) v = rng.uniform_int(0, maxima[0]);
  std::uint64_t words[5];
  codec.encode(values, words);
  std::vector<std::int64_t> decoded(20);
  codec.decode(words, decoded);
  EXPECT_EQ(decoded, values);
}

TEST(PackedKey, DistinctValuesDistinctKeys) {
  PackedKeyCodec codec;
  const std::vector<std::int64_t> maxima{5, 5, 5};
  codec.plan(maxima);
  std::vector<std::uint64_t> seen;
  for (std::int64_t a = 0; a <= 5; ++a) {
    for (std::int64_t b = 0; b <= 5; ++b) {
      for (std::int64_t c = 0; c <= 5; ++c) {
        std::uint64_t word = 0;
        codec.encode(std::vector<std::int64_t>{a, b, c}, &word);
        seen.push_back(word);
      }
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

// ---- flat hash table ------------------------------------------------------

TEST(FlatIndexTable, InsertFindAndGrow) {
  FlatIndexTable table;
  table.reset(0);
  std::vector<std::uint64_t> keys;  // external arena, one word per key
  const auto equals = [&](std::uint64_t probe) {
    return [&, probe](std::uint32_t i) { return keys[i] == probe; };
  };
  const auto hash_of = [&](std::uint32_t i) { return hash_words(&keys[i], 1); };
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const std::uint64_t key = k * 0x10001;
    const auto fresh = static_cast<std::uint32_t>(keys.size());
    const auto [idx, inserted] = table.find_or_insert(
        hash_words(&key, 1), fresh, equals(key), hash_of);
    ASSERT_TRUE(inserted);
    ASSERT_EQ(idx, fresh);
    keys.push_back(key);
  }
  EXPECT_EQ(table.size(), 1000u);
  // Duplicate inserts return the original payload index.
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const std::uint64_t key = k * 0x10001;
    const auto [idx, inserted] = table.find_or_insert(
        hash_words(&key, 1), 0xdeadu, equals(key), hash_of);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(idx, static_cast<std::uint32_t>(k));
  }
  // Lookups of absent keys miss.
  const std::uint64_t absent = 12345;
  EXPECT_EQ(table.find(hash_words(&absent, 1), equals(absent)),
            FlatIndexTable::kEmpty);
  // reset keeps capacity but empties the table.
  const auto cap = table.capacity();
  table.reset(1000);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.capacity(), cap);
}

// ---- engine vs reference parity ------------------------------------------

Instance corpus_instance(std::uint64_t seed, std::size_t n, ProcId m,
                         std::int64_t max_size, std::uint64_t variant) {
  GeneratorOptions gen;
  gen.num_jobs = n;
  gen.num_procs = m;
  gen.max_size = max_size;
  gen.min_size = variant % 3 == 0 ? 0 : 1;
  gen.size_dist = static_cast<SizeDistribution>(variant % 5);
  gen.placement = static_cast<PlacementPolicy>((variant / 5) % 5);
  gen.cost_model = static_cast<CostModel>((variant / 25) % 5);
  gen.max_cost = 10;
  return random_instance(gen, seed);
}

/// Drives both engines over the shared guess sequence and asserts equality
/// of every observable at every guess. Returns the number of guesses that
/// were compared.
int assert_guess_parity(const Instance& instance, double eps, Cost budget,
                        std::size_t state_limit, PtasScratch& scratch) {
  const double delta = ptas_delta(eps);
  Size guess = ptas_scan_start(instance, budget);
  const Size stop = ptas_scan_stop(instance);
  int compared = 0;
  while (guess <= stop) {
    const auto eng = ptas_probe_guess(instance, guess, eps, budget,
                                      state_limit, scratch,
                                      /*reconstruct=*/true);
    const auto ref =
        ptas_reference_guess(instance, guess, eps, budget, state_limit);
    EXPECT_EQ(eng.representable, ref.representable) << "guess " << guess;
    EXPECT_EQ(eng.within_limit, ref.within_limit) << "guess " << guess;
    EXPECT_EQ(eng.constructed, ref.constructed) << "guess " << guess;
    EXPECT_EQ(eng.cost, ref.cost) << "guess " << guess;
    EXPECT_EQ(eng.states, ref.states) << "guess " << guess;
    if (eng.constructed && ref.constructed) {
      EXPECT_EQ(eng.assignment, ref.assignment) << "guess " << guess;
    }
    ++compared;
    if (!eng.within_limit) break;
    if (eng.constructed && eng.cost <= budget) break;
    guess = ptas_next_guess(guess, delta);
  }
  return compared;
}

TEST(PtasDpParity, PinnedCorpusAllGuessesBitIdentical) {
  PtasScratch scratch;  // deliberately reused across every case
  int total_compared = 0;
  std::uint64_t variant = 0;
  for (const double eps : {0.5, 1.0}) {
    for (const std::size_t n : {0u, 1u, 5u, 9u, 12u}) {
      for (const ProcId m : {1u, 2u, 3u}) {
        const auto instance =
            corpus_instance(1000 + variant, n, m, 50, variant);
        ++variant;
        for (const Cost budget : {kInfCost, Cost{6}, Cost{0}}) {
          total_compared += assert_guess_parity(instance, eps, budget,
                                                1'000'000, scratch);
        }
      }
    }
  }
  EXPECT_GT(total_compared, 80);
}

TEST(PtasDpParity, StateLimitAbortsAtIdenticalCounts) {
  PtasScratch scratch;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto instance = corpus_instance(7000 + seed, 12, 3, 1000, seed);
    for (const std::size_t limit : {1u, 5u, 40u, 300u}) {
      assert_guess_parity(instance, 0.5, kInfCost, limit, scratch);
    }
  }
}

TEST(PtasDpParity, BudgetBoundaryDecisionsMatch) {
  // At budgets C-1, C, C+1 around the unconstrained solution cost C the
  // engines must flip accept/reject identically (the branch-and-bound cuts
  // sit exactly on this boundary).
  PtasScratch scratch;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto instance = corpus_instance(4000 + seed, 10, 3, 30, seed);
    PtasOptions options;
    options.eps = 0.5;
    const auto base = ptas_rebalance(instance, options, scratch);
    ASSERT_TRUE(base.success);
    const Cost c = base.result.cost;
    for (const Cost budget : {c - 1, c, c + 1}) {
      if (budget < 0) continue;
      assert_guess_parity(instance, 0.5, budget, 1'000'000, scratch);
    }
  }
}

TEST(PtasDpRegression, NeverMoreStatesThanReference) {
  // The pruned engine must materialize exactly the reference's states: the
  // branch-and-bound cuts only ever remove transitions the reference
  // rejects after full evaluation, never fewer, never more.
  PtasScratch scratch;
  std::size_t total_states = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto instance = corpus_instance(5000 + seed, 11, 3, 100, seed);
    // The first scan guess is >= the max job (representable) and tight, so
    // the class structure - and the state space - is at its richest.
    const Size guess = ptas_scan_start(instance, kInfCost);
    const auto eng = ptas_probe_guess(instance, guess, 0.5, kInfCost,
                                      2'000'000, scratch);
    const auto ref =
        ptas_reference_guess(instance, guess, 0.5, kInfCost, 2'000'000);
    EXPECT_LE(eng.states, ref.states);
    EXPECT_EQ(eng.states, ref.states);
    total_states += eng.states;
  }
  EXPECT_GT(total_states, 500u);  // the corpus is not trivial
}

// ---- scratch reuse and parallel determinism -------------------------------

TEST(PtasEngine, ScratchReuseIsBitIdentical) {
  PtasScratch reused;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto instance = corpus_instance(6000 + seed, 9, 3, 40, seed);
    PtasOptions options;
    options.eps = 0.6;
    options.budget = seed % 2 == 0 ? kInfCost : Cost{5};
    const auto fresh = ptas_rebalance(instance, options);
    const auto warm = ptas_rebalance(instance, options, reused);
    EXPECT_EQ(fresh.success, warm.success);
    EXPECT_EQ(fresh.accepted_guess, warm.accepted_guess);
    EXPECT_EQ(fresh.states, warm.states);
    EXPECT_EQ(fresh.guesses_evaluated, warm.guesses_evaluated);
    EXPECT_EQ(fresh.result.assignment, warm.result.assignment);
    EXPECT_EQ(fresh.result.cost, warm.result.cost);
    EXPECT_EQ(fresh.result.makespan, warm.result.makespan);
  }
}

TEST(PtasEngine, ParallelScanMatchesSerialWithScratches) {
  ThreadPool pool(4);
  std::vector<PtasScratch> scratches;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto instance = corpus_instance(6500 + seed, 10, 3, 60, seed);
    PtasOptions options;
    options.eps = 0.5;
    const auto serial = ptas_rebalance(instance, options);
    const auto parallel =
        ptas_rebalance_parallel(instance, options, pool, scratches, 3);
    EXPECT_EQ(serial.success, parallel.success);
    EXPECT_EQ(serial.accepted_guess, parallel.accepted_guess);
    EXPECT_EQ(serial.states, parallel.states);
    EXPECT_EQ(serial.guesses_evaluated, parallel.guesses_evaluated);
    EXPECT_EQ(serial.result.assignment, parallel.result.assignment);
    EXPECT_EQ(serial.result.cost, parallel.result.cost);
  }
}

// ---- allocation-free steady state ----------------------------------------

TEST(PtasEngine, WarmedGuessScanDoesNotAllocate) {
  // Deterministically pick a state-rich instance from the pinned corpus so
  // the steady-state claim is about a real DP, not a degenerate one.
  Instance instance;
  Size guess = 0;
  {
    PtasScratch probe_scratch;
    for (std::uint64_t variant = 0; variant < 32; ++variant) {
      auto candidate = corpus_instance(8080 + variant, 14, 4, 100, variant);
      const Size start = ptas_scan_start(candidate, kInfCost);
      const auto probe = ptas_probe_guess(candidate, start, 0.4, kInfCost,
                                          2'000'000, probe_scratch);
      if (probe.representable && probe.states > 100) {
        instance = std::move(candidate);
        guess = start;
        break;
      }
    }
  }
  ASSERT_GT(guess, 0);
  PtasScratch scratch;
  scratch.warm(instance.num_jobs(), instance.num_procs);
  // First probe may grow the arenas to this shape.
  const auto first = ptas_probe_guess(instance, guess, 0.4, kInfCost,
                                      2'000'000, scratch);
  ASSERT_TRUE(first.representable);
  ASSERT_GT(first.states, 100u);
  // Steady state: identical probes must not touch the heap at all.
  const auto before = g_allocations.load();
  const auto repeat = ptas_probe_guess(instance, guess, 0.4, kInfCost,
                                       2'000'000, scratch);
  const auto after = g_allocations.load();
  EXPECT_EQ(after - before, 0u) << "warmed probe allocated";
  EXPECT_EQ(repeat.cost, first.cost);
  EXPECT_EQ(repeat.states, first.states);

  // A full scan over warmed state: every per-guess DP evaluation is
  // allocation-free too. The scan *bounds* (ptas_scan_start's certified
  // lower bounds) are a once-per-solve computation outside the steady-state
  // contract, so they are hoisted out of the measured region.
  const double delta = ptas_delta(0.5);
  const Size start = ptas_scan_start(instance, kInfCost);
  const Size stop = ptas_scan_stop(instance);
  for (Size g = start; g <= stop; g = ptas_next_guess(g, delta)) {
    (void)ptas_probe_guess(instance, g, 0.5, kInfCost, 2'000'000, scratch);
  }
  const auto warm_before = g_allocations.load();
  for (Size g = start; g <= stop; g = ptas_next_guess(g, delta)) {
    (void)ptas_probe_guess(instance, g, 0.5, kInfCost, 2'000'000, scratch);
  }
  EXPECT_EQ(g_allocations.load() - warm_before, 0u)
      << "warmed full guess scan allocated";
}

}  // namespace
}  // namespace lrb
