// Tests for the diffusion substrate: proximity graphs, continuous
// first-order diffusion, and job-granular local exchange.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/generators.h"
#include "core/lower_bounds.h"
#include "diffusion/diffusion.h"
#include "diffusion/graph.h"
#include "diffusion/local_exchange.h"

namespace lrb::diffusion {
namespace {

// ------------------------------------------------------------------- graphs

TEST(Graph, RingShape) {
  const auto g = ring_graph(5);
  EXPECT_EQ(g.num_procs(), 5u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_EQ(g.neighbors[0], (std::vector<ProcId>{1, 4}));
  EXPECT_FALSE(validate(g).has_value());
}

TEST(Graph, TinyRings) {
  EXPECT_EQ(ring_graph(1).num_edges(), 0u);
  EXPECT_EQ(ring_graph(2).num_edges(), 1u);  // no parallel edge
}

TEST(Graph, CompleteShape) {
  const auto g = complete_graph(6);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_EQ(g.max_degree(), 5u);
  EXPECT_FALSE(validate(g).has_value());
}

TEST(Graph, TorusShape) {
  const auto g = torus_graph(3, 4);
  EXPECT_EQ(g.num_procs(), 12u);
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_EQ(g.num_edges(), 24u);  // 2 * rows * cols for rows,cols >= 3
  EXPECT_FALSE(validate(g).has_value());
}

TEST(Graph, HypercubeShape) {
  const auto g = hypercube_graph(3);
  EXPECT_EQ(g.num_procs(), 8u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_EQ(g.num_edges(), 12u);  // d * 2^(d-1)
  EXPECT_FALSE(validate(g).has_value());
}

TEST(Graph, ValidateCatchesAsymmetry) {
  ProcessorGraph g;
  g.neighbors = {{1}, {}};
  EXPECT_TRUE(validate(g).has_value());
}

TEST(Graph, EdgesEnumeration) {
  const auto g = ring_graph(4);
  const auto e = g.edges();
  EXPECT_EQ(e.size(), 4u);
  for (const auto& [u, v] : e) EXPECT_LT(u, v);
}

// ---------------------------------------------------------------- diffusion

TEST(Diffusion, ConvergesToAverageOnRing) {
  const auto g = ring_graph(8);
  const std::vector<Size> loads{80, 0, 0, 0, 0, 0, 0, 0};
  const auto r = diffuse(g, loads);
  ASSERT_TRUE(r.converged);
  for (double x : r.loads) EXPECT_NEAR(x, 10.0, 1e-5);
}

TEST(Diffusion, MassIsConserved) {
  const auto g = torus_graph(3, 3);
  const std::vector<Size> loads{5, 0, 12, 7, 0, 3, 9, 1, 8};
  DiffusionOptions opt;
  opt.max_iterations = 37;  // stop mid-flight on purpose
  opt.tolerance = 0.0;
  const auto r = diffuse(g, loads, opt);
  const double total = std::accumulate(r.loads.begin(), r.loads.end(), 0.0);
  EXPECT_NEAR(total, 45.0, 1e-9);
}

TEST(Diffusion, CompleteGraphIsFastestRingIsSlowest) {
  std::vector<Size> loads(16, 0);
  loads[0] = 160;
  DiffusionOptions opt;
  opt.tolerance = 1e-3;
  const auto ring = diffuse(ring_graph(16), loads, opt);
  const auto cube = diffuse(hypercube_graph(4), loads, opt);
  const auto complete = diffuse(complete_graph(16), loads, opt);
  ASSERT_TRUE(ring.converged && cube.converged && complete.converged);
  EXPECT_LT(complete.iterations, cube.iterations);
  EXPECT_LT(cube.iterations, ring.iterations);
}

TEST(Diffusion, NetFlowAccountsForLoadChange) {
  // For every processor: initial + (in-flow) - (out-flow) = final.
  const auto g = ring_graph(6);
  const std::vector<Size> loads{30, 0, 6, 12, 0, 12};
  const auto r = diffuse(g, loads);
  ASSERT_TRUE(r.converged);
  std::vector<double> reconstructed(loads.begin(), loads.end());
  for (const auto& [edge, flow] : r.net_flow) {
    reconstructed[edge.first] -= flow;
    reconstructed[edge.second] += flow;
  }
  for (std::size_t i = 0; i < reconstructed.size(); ++i) {
    EXPECT_NEAR(reconstructed[i], r.loads[i], 1e-6) << "proc " << i;
  }
}

TEST(Diffusion, AlreadyBalancedConvergesImmediately) {
  const auto g = ring_graph(4);
  const auto r = diffuse(g, {5, 5, 5, 5});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

// ----------------------------------------------------------- local exchange

TEST(LocalExchange, UnitJobsReachNeighborBalanceOnRing) {
  // Unit jobs: at quiescence neighboring loads differ by at most 1 (the
  // classic local-balancing guarantee).
  const auto inst = unit_instance({24, 0, 0, 0, 0, 0});
  const auto g = ring_graph(6);
  const auto r = local_exchange_rebalance(inst, g);
  ASSERT_TRUE(r.quiescent);
  const auto l = loads(inst, r.result.assignment);
  for (const auto& [u, v] : g.edges()) {
    EXPECT_LE(std::abs(l[u] - l[v]), 1) << u << "-" << v;
  }
  // On a connected graph that means global max - min <= diameter.
  const Size mx = *std::max_element(l.begin(), l.end());
  const Size mn = *std::min_element(l.begin(), l.end());
  EXPECT_LE(mx - mn, 3);
}

TEST(LocalExchange, CompleteGraphMatchesGlobalQuality) {
  GeneratorOptions opt;
  opt.num_jobs = 60;
  opt.num_procs = 8;
  opt.placement = PlacementPolicy::kHotspot;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto inst = random_instance(opt, seed);
    const auto r =
        local_exchange_rebalance(inst, complete_graph(8));
    ASSERT_TRUE(r.quiescent);
    // Quiescent on the complete graph => no single move helps: at most
    // 2x the fractional optimum (standard local-optimality argument).
    const Size lb = std::max(average_load_bound(inst), max_job_bound(inst));
    EXPECT_LE(r.result.makespan, 2 * lb) << "seed=" << seed;
  }
}

TEST(LocalExchange, MoveBudgetRespected) {
  const auto inst = unit_instance({30, 0, 0, 0});
  LocalExchangeOptions opt;
  opt.max_moves = 5;
  const auto r = local_exchange_rebalance(inst, ring_graph(4), opt);
  EXPECT_LE(r.result.moves, 5);
  // Budget binds: without it ~22 jobs would move.
  EXPECT_EQ(r.result.moves, 5);
}

TEST(LocalExchange, RespectsGraphLocality) {
  // A path-like ring with the hotspot at 0: jobs can only reach distant
  // processors across multiple rounds; final assignment must still be a
  // valid permutation of processors (sanity) and strictly improve.
  const auto inst = unit_instance({16, 0, 0, 0, 0, 0, 0, 0});
  const auto r = local_exchange_rebalance(inst, ring_graph(8));
  EXPECT_LT(r.result.makespan, 16);
  EXPECT_FALSE(validate(inst, r.result.assignment).has_value());
  EXPECT_GT(r.rounds, 1);  // locality forces multi-round spreading
}

TEST(LocalExchange, QuiescentImmediatelyWhenBalanced) {
  const auto inst = unit_instance({3, 3, 3});
  const auto r = local_exchange_rebalance(inst, ring_graph(3));
  EXPECT_TRUE(r.quiescent);
  EXPECT_EQ(r.result.moves, 0);
  EXPECT_EQ(r.rounds, 1);
}

}  // namespace
}  // namespace lrb::diffusion
