// End-to-end tests for streaming sessions on the sharded server
// (docs/streaming.md): the byte-identity contract against the serial
// replay reference across reactors and reconnects, session pinning and
// cross-reactor forwarding, exactly-once delta dedup, and every session
// error path — all of which must answer the offending frame and leave the
// connection open.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/generators.h"
#include "obs/metrics.h"
#include "online/trace.h"
#include "stream/delta_log.h"
#include "svc/server.h"
#include "svc/session_client.h"
#include "svc/wire.h"

namespace lrb::svc {
namespace {

std::string stream_socket_path() {
  static int counter = 0;
  return "/tmp/lrb_stream_t" + std::to_string(getpid()) + "_" +
         std::to_string(counter++) + ".sock";
}

/// In-process server with its own registry, so tests can assert on the
/// stream.* metrics after draining.
class StreamServer {
 public:
  explicit StreamServer(std::size_t reactors, std::size_t cache_bytes = 0) {
    path_ = stream_socket_path();
    ServerOptions options;
    options.unix_path = path_;
    options.metrics = &registry_;
    options.reactors = reactors;
    options.engine_workers = 2;
    options.engine.workers = 2;
    options.cache_bytes = cache_bytes;
    server_ = std::make_unique<Server>(std::move(options));
    std::string error;
    if (!server_->start(&error)) {
      ADD_FAILURE() << "server start failed: " << error;
      return;
    }
    runner_ = std::thread([this] { server_->run(); });
  }

  ~StreamServer() { drain(); }

  void drain() {
    if (runner_.joinable()) {
      server_->notify_signal();
      runner_.join();
    }
    unlink(path_.c_str());
  }

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] obs::Registry& registry() { return registry_; }

 private:
  std::string path_;
  obs::Registry registry_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
};

stream::DeltaLog sample_log(std::uint64_t seed, std::size_t events) {
  stream::TriggerConfig trigger;
  trigger.spec = solver::BackendId::kBestOf;
  trigger.imbalance_ratio = 1.5;
  trigger.delta_count = 12;
  online::TraceOptions options;
  options.num_events = events;
  options.departure_fraction = 0.4;
  return stream::delta_log_from_trace(
      mixed_corpus_instance(0, seed), online::random_trace(options, seed),
      trigger);
}

/// Raw call helper: sends one session frame and returns the reply.
struct RawReply {
  MsgType type = MsgType::kError;
  std::string payload;
};

RawReply raw_call(Client& client, MsgType type, std::uint64_t request_id,
                  const std::string& payload) {
  RawReply reply;
  FrameHeader header;
  std::string error;
  EXPECT_TRUE(client.call(type, request_id, payload, &header, &reply.payload,
                          &error))
      << error;
  reply.type = header.type;
  return reply;
}

ErrorCode error_code_of(const RawReply& reply) {
  EXPECT_EQ(reply.type, MsgType::kError);
  const auto decoded = decode_error_payload(reply.payload);
  EXPECT_TRUE(decoded);
  return decoded ? decoded->code : ErrorCode::kInternal;
}

SessionOpenRequest sample_open(std::uint64_t session_id) {
  SessionOpenRequest request;
  request.session_id = session_id;
  request.trigger.spec = solver::BackendId::kBestOf;
  request.trigger.delta_count = 8;
  request.instance = make_instance({4, 3, 2, 1}, {0, 0, 1, 1}, 2);
  return request;
}

SessionDeltaRequest arrivals_frame(std::uint64_t session_id,
                                   std::uint64_t first_seq,
                                   std::uint64_t first_job_id,
                                   std::uint32_t count) {
  SessionDeltaRequest request;
  request.session_id = session_id;
  request.first_seq = first_seq;
  for (std::uint32_t i = 0; i < count; ++i) {
    stream::Delta arrive;
    arrive.kind = stream::DeltaKind::kJobArrive;
    arrive.id = first_job_id + i;
    arrive.size = 2 + i;
    request.deltas.push_back(arrive);
  }
  return request;
}

// ---------------------------------------------------------------------------
// The determinism contract.
// ---------------------------------------------------------------------------

TEST(SessionService, CheckedStreamSurvivesCrossReactorForwarding) {
  StreamServer server(3);
  const stream::DeltaLog log = sample_log(21, 120);

  StreamRunOptions run;
  run.endpoint = Endpoint::unix_socket(server.path());
  run.session_id = 1;
  run.frame_size = 5;
  // Reconnect after EVERY frame: round-robin dealing then lands most
  // frames on reactors that do not own the session, so every one of those
  // acks crossed the forwarding path — and still byte-matched.
  run.reconnect_every = 1;
  run.check = true;
  const StreamRunResult result = run_session_stream(log, run);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.mismatches, 0u);
  EXPECT_GT(result.frames_sent, 10u);
  EXPECT_GT(result.deltas_applied, 0u);

  server.drain();
  EXPECT_GT(server.registry().counter("stream.forwarded_frames").value(), 0);
  EXPECT_EQ(server.registry().counter("stream.sessions_opened").value(), 1);
  EXPECT_EQ(server.registry().counter("stream.sessions_closed").value(), 1);
  EXPECT_EQ(server.registry().gauge("stream.sessions_open").value(), 0);
}

TEST(SessionService, ConcurrentSessionsAllMatchTheSerialReference) {
  StreamServer server(2);
  constexpr std::size_t kSessions = 4;
  std::vector<StreamRunResult> results(kSessions);
  std::vector<std::thread> threads;
  for (std::size_t s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      const stream::DeltaLog log = sample_log(30 + s, 80);
      StreamRunOptions run;
      run.endpoint = Endpoint::unix_socket(server.path());
      run.session_id = s + 1;
      run.frame_size = 7;
      run.reconnect_every = 3;
      run.check = true;
      run.retry.jitter_seed = s;
      results[s] = run_session_stream(log, run);
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t s = 0; s < kSessions; ++s) {
    EXPECT_TRUE(results[s].ok) << "session " << s << ": " << results[s].error;
    EXPECT_EQ(results[s].mismatches, 0u);
  }
}

TEST(SessionService, CacheEnabledServerStreamsIdenticalBytes) {
  StreamServer server(2, std::size_t{4} << 20);
  const stream::DeltaLog log = sample_log(22, 100);
  StreamRunOptions run;
  run.endpoint = Endpoint::unix_socket(server.path());
  run.session_id = 9;
  run.frame_size = 6;
  run.check = true;
  run.cached = true;  // mirror with cached_serial_reference
  const StreamRunResult result = run_session_stream(log, run);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.mismatches, 0u);
}

// ---------------------------------------------------------------------------
// Edge cases: every session error answers one frame and the stream stays
// open (proved by a successful call on the SAME connection afterwards).
// ---------------------------------------------------------------------------

TEST(SessionService, DuplicateOpenIsIdempotentOnlyWhenPristine) {
  StreamServer server(1);
  std::string error;
  auto client = Client::connect_unix(server.path(), &error);
  ASSERT_TRUE(client) << error;

  const std::string payload =
      encode_session_open_request(sample_open(7));
  const RawReply first = raw_call(*client, MsgType::kSessionOpen, 1, payload);
  ASSERT_EQ(first.type, MsgType::kSessionOpenOk);

  // Byte-identical re-open of a pristine session: the stored ack, resent.
  const RawReply again = raw_call(*client, MsgType::kSessionOpen, 2, payload);
  EXPECT_EQ(again.type, MsgType::kSessionOpenOk);
  EXPECT_EQ(again.payload, first.payload);

  // A DIFFERENT open for the same id is a conflict, not a resend.
  SessionOpenRequest conflicting = sample_open(7);
  conflicting.trigger.delta_count = 99;
  const RawReply conflict = raw_call(
      *client, MsgType::kSessionOpen, 3,
      encode_session_open_request(conflicting));
  EXPECT_EQ(error_code_of(conflict), ErrorCode::kSessionExists);

  // The connection survived the error.
  const RawReply stats = raw_call(*client, MsgType::kSessionStats, 4,
                                  encode_session_id_payload(7));
  EXPECT_EQ(stats.type, MsgType::kSessionStatsOk);
}

TEST(SessionService, UnknownSessionAndBadSequenceKeepTheStreamOpen) {
  StreamServer server(1);
  std::string error;
  auto client = Client::connect_unix(server.path(), &error);
  ASSERT_TRUE(client) << error;

  // Deltas and stats for a session nobody opened.
  const RawReply ghost_delta =
      raw_call(*client, MsgType::kSessionDelta, 1,
               encode_session_delta_request(arrivals_frame(99, 1, 100, 2)));
  EXPECT_EQ(error_code_of(ghost_delta), ErrorCode::kUnknownSession);
  const RawReply ghost_stats = raw_call(*client, MsgType::kSessionStats, 2,
                                        encode_session_id_payload(99));
  EXPECT_EQ(error_code_of(ghost_stats), ErrorCode::kUnknownSession);

  const RawReply open =
      raw_call(*client, MsgType::kSessionOpen, 3,
               encode_session_open_request(sample_open(1)));
  ASSERT_EQ(open.type, MsgType::kSessionOpenOk);

  // A gap is bad-sequence (only next-seq or an exact resend is accepted).
  const RawReply gap =
      raw_call(*client, MsgType::kSessionDelta, 4,
               encode_session_delta_request(arrivals_frame(1, 5, 100, 2)));
  EXPECT_EQ(error_code_of(gap), ErrorCode::kBadSequence);

  // The stream continues: the correctly numbered frame applies.
  const RawReply good =
      raw_call(*client, MsgType::kSessionDelta, 5,
               encode_session_delta_request(arrivals_frame(1, 1, 100, 2)));
  ASSERT_TRUE(good.type == MsgType::kSessionDeltaOk ||
              good.type == MsgType::kSessionPlan);
  const auto ack = decode_session_delta_reply(good.payload, &error);
  ASSERT_TRUE(ack) << error;
  EXPECT_EQ(ack->last_seq, 2u);
  EXPECT_EQ(ack->applied, 2u);
}

TEST(SessionService, CloseTombstonesTheSession) {
  StreamServer server(1);
  std::string error;
  auto client = Client::connect_unix(server.path(), &error);
  ASSERT_TRUE(client) << error;

  const RawReply open =
      raw_call(*client, MsgType::kSessionOpen, 1,
               encode_session_open_request(sample_open(3)));
  ASSERT_EQ(open.type, MsgType::kSessionOpenOk);

  const RawReply close = raw_call(*client, MsgType::kSessionClose, 2,
                                  encode_session_id_payload(3));
  ASSERT_EQ(close.type, MsgType::kSessionCloseOk);

  // A retried close gets the tombstoned ack, byte for byte.
  const RawReply close_again = raw_call(*client, MsgType::kSessionClose, 3,
                                        encode_session_id_payload(3));
  EXPECT_EQ(close_again.type, MsgType::kSessionCloseOk);
  EXPECT_EQ(close_again.payload, close.payload);

  // Deltas and stats after close are definitively rejected...
  const RawReply late_delta =
      raw_call(*client, MsgType::kSessionDelta, 4,
               encode_session_delta_request(arrivals_frame(3, 1, 100, 1)));
  EXPECT_EQ(error_code_of(late_delta), ErrorCode::kSessionClosed);
  const RawReply late_stats = raw_call(*client, MsgType::kSessionStats, 5,
                                       encode_session_id_payload(3));
  EXPECT_EQ(error_code_of(late_stats), ErrorCode::kSessionClosed);

  // ...and the id can never be reused (a lost-ack reopen must not
  // silently build a fresh session under a retried client).
  const RawReply reopen =
      raw_call(*client, MsgType::kSessionOpen, 6,
               encode_session_open_request(sample_open(3)));
  EXPECT_EQ(error_code_of(reopen), ErrorCode::kSessionExists);
}

TEST(SessionService, ExactResendOfTheLastFrameIsNotReapplied) {
  StreamServer server(1);
  std::string error;
  auto client = Client::connect_unix(server.path(), &error);
  ASSERT_TRUE(client) << error;

  ASSERT_EQ(raw_call(*client, MsgType::kSessionOpen, 1,
                     encode_session_open_request(sample_open(4)))
                .type,
            MsgType::kSessionOpenOk);

  const std::string frame =
      encode_session_delta_request(arrivals_frame(4, 1, 100, 3));
  const RawReply ack = raw_call(*client, MsgType::kSessionDelta, 2, frame);
  ASSERT_TRUE(ack.type == MsgType::kSessionDeltaOk ||
              ack.type == MsgType::kSessionPlan);

  // The identical frame again (a retry whose ack was lost): stored reply,
  // no re-application.
  const RawReply resent = raw_call(*client, MsgType::kSessionDelta, 3, frame);
  EXPECT_EQ(resent.type, ack.type);
  EXPECT_EQ(resent.payload, ack.payload);

  // The stream then continues from where it really was.
  const RawReply next =
      raw_call(*client, MsgType::kSessionDelta, 4,
               encode_session_delta_request(arrivals_frame(4, 4, 200, 1)));
  ASSERT_TRUE(next.type == MsgType::kSessionDeltaOk ||
              next.type == MsgType::kSessionPlan);
  const auto decoded = decode_session_delta_reply(next.payload, &error);
  ASSERT_TRUE(decoded) << error;
  EXPECT_EQ(decoded->last_seq, 4u);

  server.drain();
  // 4 deltas total: the resend must not have double-applied the first 3.
  EXPECT_EQ(server.registry().counter("stream.deltas_applied").value(), 4);
  EXPECT_GE(server.registry().counter("stream.dup_frames_resent").value(), 1);
}

TEST(SessionService, OversizedDeltaFrameIsRejectedNotFatal) {
  StreamServer server(1);
  std::string error;
  auto client = Client::connect_unix(server.path(), &error);
  ASSERT_TRUE(client) << error;

  ASSERT_EQ(raw_call(*client, MsgType::kSessionOpen, 1,
                     encode_session_open_request(sample_open(5)))
                .type,
            MsgType::kSessionOpenOk);

  // A frame whose count field claims more deltas than kMaxDeltasPerFrame
  // (and than the payload carries): the decoder must refuse it without
  // trusting the count, and the session error leaves the stream usable.
  std::string lying =
      encode_session_delta_request(arrivals_frame(5, 1, 100, 1));
  const std::uint32_t huge = kMaxDeltasPerFrame + 1;
  std::memcpy(lying.data() + 16, &huge, sizeof(huge));
  const RawReply rejected =
      raw_call(*client, MsgType::kSessionDelta, 2, lying);
  EXPECT_EQ(error_code_of(rejected), ErrorCode::kBadRequest);

  // Still open, still at seq 0: the honest frame applies.
  const RawReply good =
      raw_call(*client, MsgType::kSessionDelta, 3,
               encode_session_delta_request(arrivals_frame(5, 1, 100, 1)));
  ASSERT_TRUE(good.type == MsgType::kSessionDeltaOk ||
              good.type == MsgType::kSessionPlan);
  const auto decoded = decode_session_delta_reply(good.payload, &error);
  ASSERT_TRUE(decoded) << error;
  EXPECT_EQ(decoded->last_seq, 1u);
}

TEST(SessionService, SessionsRespectTheCapacityLimit) {
  // max_sessions is ServerOptions-controlled; the smallest server proves
  // the kOverloaded path without opening thousands of sessions.
  std::string path = stream_socket_path();
  ServerOptions options;
  options.unix_path = path;
  obs::Registry registry;
  options.metrics = &registry;
  options.max_sessions = 1;
  auto owned = std::make_unique<Server>(std::move(options));
  std::string error;
  ASSERT_TRUE(owned->start(&error)) << error;
  std::thread runner([&owned] { owned->run(); });

  auto client = Client::connect_unix(path, &error);
  ASSERT_TRUE(client) << error;
  ASSERT_EQ(raw_call(*client, MsgType::kSessionOpen, 1,
                     encode_session_open_request(sample_open(1)))
                .type,
            MsgType::kSessionOpenOk);
  const RawReply overflow =
      raw_call(*client, MsgType::kSessionOpen, 2,
               encode_session_open_request(sample_open(2)));
  EXPECT_EQ(error_code_of(overflow), ErrorCode::kOverloaded);

  // Closing the first session frees the slot.
  ASSERT_EQ(raw_call(*client, MsgType::kSessionClose, 3,
                     encode_session_id_payload(1))
                .type,
            MsgType::kSessionCloseOk);
  EXPECT_EQ(raw_call(*client, MsgType::kSessionOpen, 4,
                     encode_session_open_request(sample_open(2)))
                .type,
            MsgType::kSessionOpenOk);

  client.reset();
  owned->notify_signal();
  runner.join();
  unlink(path.c_str());
}

}  // namespace
}  // namespace lrb::svc
