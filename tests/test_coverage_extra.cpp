// Targeted tests for less-travelled code paths: simplex degeneracies,
// PARTITION tie-breaking, PTAS unconstrained budgets, cost-PARTITION guess
// scans, local-search refunds, and RNG extremes.

#include <gtest/gtest.h>

#include <set>

#include "algo/cost_partition.h"
#include "algo/local_search.h"
#include "algo/m_partition.h"
#include "algo/partition.h"
#include "algo/ptas.h"
#include "core/generators.h"
#include "core/lower_bounds.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace lrb {
namespace {

// ------------------------------------------------------------------ simplex

TEST(SimplexExtra, RedundantEqualityRowsHandled) {
  // x + y = 4 stated twice: phase 1 leaves one artificial basic at zero and
  // expel_artificials must cope with the all-zero row.
  LinearProgram lp;
  lp.objective = {1.0, 1.0};
  lp.add_eq({1.0, 1.0}, 4.0);
  lp.add_eq({1.0, 1.0}, 4.0);
  const auto solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 4.0, 1e-7);
}

TEST(SimplexExtra, ContradictoryEqualities) {
  LinearProgram lp;
  lp.objective = {1.0};
  lp.add_eq({1.0}, 3.0);
  lp.add_eq({1.0}, 5.0);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(SimplexExtra, ZeroObjectiveReturnsAnyFeasiblePoint) {
  LinearProgram lp;
  lp.objective = {0.0, 0.0};
  lp.add_le({1.0, 1.0}, 10.0);
  lp.add_ge({1.0, 0.0}, 2.0);
  const auto solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_GE(solution.x[0], 2.0 - 1e-9);
  EXPECT_LE(solution.x[0] + solution.x[1], 10.0 + 1e-9);
}

// --------------------------------------------------- partition tie-breaking

TEST(PartitionExtra, TiePrefersLargeHolders) {
  // Two processors with equal c_i = 0; one holds a large job. With L_T = 1,
  // the large-holder must be selected: selecting the other would force the
  // large job onto a slot and strand the holder above T... observable here
  // through zero removals (selected holder keeps its large in place).
  //   P0: {6} (large at T = 10: 12 > 10), P1: {5, 4} small-sum 9 <= 10.
  //   a = (0, 1)?: P1 small sum 9 > T/2 = 5 -> must drop one -> a1 = 1,
  //   b1 = 0 -> c1 = 1; P0: a0 = 0, b0 = 0 -> c0 = 0. Holder wins outright;
  //   craft a true tie instead: P1 small-sum <= 5 gives c1 = 0 too.
  const auto inst = make_instance({6, 3, 2}, {0, 1, 1}, 2);
  const auto outcome = partition_rebalance_at(inst, 10);
  ASSERT_TRUE(outcome.feasible);
  EXPECT_EQ(outcome.large_total, 1);
  // Both c values are 0; the tie must go to P0 (the large holder), which
  // keeps everything in place: zero removals.
  EXPECT_EQ(outcome.removals, 0);
  EXPECT_EQ(outcome.result.moves, 0);
}

TEST(PartitionExtra, EmptyProcessorsParticipateAsSlots) {
  // Two large jobs on one processor, two empty processors: Step 1 evicts
  // one large job, Step 3 selects L_T = 2 processors, Step 5 places the
  // evicted job on an empty selected processor.
  const auto inst = make_instance({7, 7}, {0, 0}, 3);
  const auto outcome = partition_rebalance_at(inst, 7);
  ASSERT_TRUE(outcome.feasible);
  EXPECT_EQ(outcome.large_extra, 1);
  EXPECT_EQ(outcome.result.makespan, 7);
  EXPECT_EQ(outcome.result.moves, 1);
}

// ------------------------------------------------------------ PTAS extremes

TEST(PtasExtra, UnconstrainedBudgetActsAsPureMakespanPtas) {
  GeneratorOptions gen;
  gen.num_jobs = 8;
  gen.num_procs = 3;
  gen.max_size = 20;
  gen.placement = PlacementPolicy::kSingleProc;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto inst = random_instance(gen, seed);
    PtasOptions opt;  // budget = kInfCost
    opt.eps = 0.5;
    const auto r = ptas_rebalance(inst, opt);
    ASSERT_TRUE(r.success) << "seed=" << seed;
    // Unconstrained: must reach within (1+eps) of the fractional bound + 1.
    const Size lb = std::max(average_load_bound(inst), max_job_bound(inst));
    EXPECT_LE(static_cast<double>(r.result.makespan),
              1.5 * static_cast<double>(lb) +
                  static_cast<double>(inst.max_job()) + 1.0)
        << "seed=" << seed;
    EXPECT_GT(r.guesses_evaluated, 0u);
  }
}

TEST(PtasExtra, SingleProcessorIdentity) {
  const auto inst = make_instance({5, 3}, {0, 0}, 1);
  PtasOptions opt;
  opt.eps = 1.0;
  const auto r = ptas_rebalance(inst, opt);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.result.makespan, 8);
  EXPECT_EQ(r.result.moves, 0);
}

// ------------------------------------------------- cost partition scanning

TEST(CostPartitionExtra, GuessScanAdvancesWhenBudgetTight) {
  // Two size-10 jobs of cost 7 each on one of two processors, budget 5:
  // the fractional lower bound starts the scan at 13, but no INTEGRAL move
  // is affordable, so guesses are rejected until T = 20 (where nothing is
  // large and the identity costs 0).
  const auto inst = make_instance({10, 10}, {7, 7}, {0, 0}, 2);
  CostPartitionOptions options;
  options.budget = 5;
  CostPartitionStats stats;
  const auto result = cost_partition_rebalance(inst, options, &stats);
  EXPECT_EQ(result.cost, 0);
  EXPECT_EQ(result.makespan, 20);  // identity is all the budget allows
  EXPECT_GT(stats.guesses_evaluated, 1u);
  EXPECT_EQ(stats.accepted_guess, 20);
}

// ----------------------------------------------------- local search refunds

TEST(LocalSearchExtra, SwapUsesRefundAccounting) {
  // Start solution moved jobs 0 and 1 away from home; swapping them back
  // in a single local-search pass must not be blocked by the k budget
  // because returning home refunds moves.
  const auto inst = make_instance({9, 2, 5, 5}, {0, 1, 0, 1}, 2);
  // Start: job0 -> P1, job1 -> P0 (a bad crossing): loads {7, 14}.
  const RebalanceResult start = finalize_result(inst, {1, 0, 0, 1});
  ASSERT_EQ(start.moves, 2);
  LocalSearchOptions options;
  options.max_moves = 2;
  const auto improved = local_search_improve(inst, start, options);
  EXPECT_LE(improved.makespan, start.makespan);
  EXPECT_LE(improved.moves, 2);
  // The best reachable state undoes the crossing: loads {11, 10} or better.
  EXPECT_LE(improved.makespan, 11);
}

// -------------------------------------------------------------- rng corners

TEST(RngExtra, FullRangeUniformInt) {
  Rng rng(99);
  const auto lo = std::numeric_limits<std::int64_t>::min();
  const auto hi = std::numeric_limits<std::int64_t>::max();
  std::set<std::int64_t> seen;
  for (int i = 0; i < 64; ++i) {
    const auto v = rng.uniform_int(lo, hi);
    seen.insert(v);
  }
  EXPECT_GT(seen.size(), 60u);  // effectively all distinct
}

TEST(RngExtra, ZipfSingleton) {
  Rng rng(5);
  ZipfSampler sampler(1, 2.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler(rng), 0u);
}

}  // namespace
}  // namespace lrb
