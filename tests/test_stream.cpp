// Unit tests for the streaming-session subsystem (src/stream/,
// docs/streaming.md): ClusterSession state tracking, delta rejection
// semantics, trigger evaluation, the serial replay reference, and the
// .lrbd delta-log format.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/generators.h"
#include "core/instance.h"
#include "online/trace.h"
#include "stream/delta_log.h"
#include "stream/replay.h"
#include "stream/session.h"

namespace lrb::stream {
namespace {

/// 2 processors, loads {7, 3}: job sizes 4+3 on proc 0, 2+1 on proc 1.
Instance small_instance() {
  return make_instance({4, 3, 2, 1}, {0, 0, 1, 1}, 2);
}

/// A trigger that never fires on its own (only kReplan / kProcDrain plan).
TriggerConfig quiet_trigger() {
  TriggerConfig config;
  config.spec = solver::BackendId::kBestOf;
  config.imbalance_ratio = 0.0;
  config.delta_count = 0;
  return config;
}

ClusterSession must_open(const Instance& initial,
                         const TriggerConfig& config) {
  std::string error;
  auto session = ClusterSession::open(initial, config, &error);
  EXPECT_TRUE(session) << error;
  return session ? *std::move(session) : ClusterSession{};
}

StepResult must_apply(ClusterSession& session, const Delta& delta,
                      std::uint64_t seq) {
  const StepResult result =
      session.step(delta, seq, serial_reference_solver(false));
  EXPECT_TRUE(result.applied) << result.error;
  return result;
}

StepResult must_reject(ClusterSession& session, const Delta& delta,
                       std::uint64_t seq) {
  const StepResult result =
      session.step(delta, seq, serial_reference_solver(false));
  EXPECT_FALSE(result.applied);
  EXPECT_FALSE(result.error.empty());
  return result;
}

TEST(StreamSession, OpenMirrorsTheInitialInstance) {
  ClusterSession session = must_open(small_instance(), quiet_trigger());
  EXPECT_EQ(session.num_jobs(), 4u);
  EXPECT_EQ(session.num_procs(), 2u);
  EXPECT_EQ(session.makespan(), 7);
  EXPECT_GE(session.lower_bound(), 4);  // max job is 4
  EXPECT_NE(session.digest(), 0u);

  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.num_jobs, 4u);
  EXPECT_EQ(stats.num_procs, 2u);
  EXPECT_EQ(stats.deltas_applied, 0u);
  EXPECT_EQ(stats.deltas_rejected, 0u);
  EXPECT_EQ(stats.plans_emitted, 0u);
  EXPECT_EQ(stats.last_seq, 0u);
  EXPECT_EQ(stats.digest, session.digest());
}

TEST(StreamSession, OpenRejectsInvalidInputs) {
  std::string error;
  Instance bad = small_instance();
  bad.initial[0] = 9;  // out of range
  EXPECT_FALSE(ClusterSession::open(bad, quiet_trigger(), &error));
  EXPECT_FALSE(error.empty());

  TriggerConfig bad_trigger = quiet_trigger();
  bad_trigger.move_frac = -0.5;
  error.clear();
  EXPECT_FALSE(
      ClusterSession::open(small_instance(), bad_trigger, &error));
  EXPECT_FALSE(error.empty());
}

TEST(StreamSession, AutoPlacedArrivalLandsOnTheLeastLoadedProcessor) {
  ClusterSession session = must_open(small_instance(), quiet_trigger());
  // Loads are {7, 3}; an auto-placed size-5 job must go to processor 1.
  Delta arrive;
  arrive.kind = DeltaKind::kJobArrive;
  arrive.id = 4;
  arrive.size = 5;
  arrive.proc = kAutoPlace;
  must_apply(session, arrive, 1);
  EXPECT_EQ(session.makespan(), 8);  // {7, 8}
  EXPECT_EQ(session.num_jobs(), 5u);
}

TEST(StreamSession, DepartAndUpdateTrackLoads) {
  ClusterSession session = must_open(small_instance(), quiet_trigger());
  Delta depart;
  depart.kind = DeltaKind::kJobDepart;
  depart.id = 0;  // size 4 on processor 0
  must_apply(session, depart, 1);
  EXPECT_EQ(session.makespan(), 3);  // {3, 3}
  EXPECT_EQ(session.num_jobs(), 3u);

  Delta update;
  update.kind = DeltaKind::kJobUpdate;
  update.id = 3;  // on processor 1, size 1 -> 9
  update.size = 9;
  must_apply(session, update, 2);
  EXPECT_EQ(session.makespan(), 11);  // {3, 11}
}

TEST(StreamSession, RejectionsConsumeTheSeqSlotWithoutMutatingState) {
  ClusterSession session = must_open(small_instance(), quiet_trigger());
  const std::uint64_t digest_before = session.digest();

  Delta unknown_job;
  unknown_job.kind = DeltaKind::kJobDepart;
  unknown_job.id = 99;
  must_reject(session, unknown_job, 1);

  Delta unknown_update;
  unknown_update.kind = DeltaKind::kJobUpdate;
  unknown_update.id = 99;
  unknown_update.size = 5;
  must_reject(session, unknown_update, 2);

  Delta duplicate_arrival;
  duplicate_arrival.kind = DeltaKind::kJobArrive;
  duplicate_arrival.id = 0;  // already live
  duplicate_arrival.size = 2;
  must_reject(session, duplicate_arrival, 3);

  Delta unknown_proc;
  unknown_proc.kind = DeltaKind::kProcRemove;
  unknown_proc.id = 42;
  must_reject(session, unknown_proc, 4);

  Delta bad_target;
  bad_target.kind = DeltaKind::kJobArrive;
  bad_target.id = 7;
  bad_target.size = 1;
  bad_target.proc = 42;  // unknown target processor
  must_reject(session, bad_target, 5);

  EXPECT_EQ(session.digest(), digest_before);
  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.deltas_applied, 0u);
  EXPECT_EQ(stats.deltas_rejected, 5u);
  EXPECT_EQ(stats.last_seq, 5u);
}

TEST(StreamSession, RemovingANonEmptyProcessorIsRejectedWithADrainHint) {
  ClusterSession session = must_open(small_instance(), quiet_trigger());
  Delta remove;
  remove.kind = DeltaKind::kProcRemove;
  remove.id = 0;  // holds two jobs
  const StepResult result = must_reject(session, remove, 1);
  EXPECT_NE(result.error.find("drain"), std::string::npos)
      << "rejection should point at proc-drain: " << result.error;
  EXPECT_EQ(session.num_procs(), 2u);

  // An empty processor removes cleanly.
  Delta add;
  add.kind = DeltaKind::kProcAdd;
  add.id = 9;
  must_apply(session, add, 2);
  EXPECT_EQ(session.num_procs(), 3u);
  remove.id = 9;
  must_apply(session, remove, 3);
  EXPECT_EQ(session.num_procs(), 2u);
}

TEST(StreamSession, DrainEvacuatesEveryJobAndEmitsTheForcedMoves) {
  ClusterSession session = must_open(small_instance(), quiet_trigger());
  Delta drain;
  drain.kind = DeltaKind::kProcDrain;
  drain.id = 0;  // jobs 0 and 1 live here
  const StepResult result = must_apply(session, drain, 1);
  ASSERT_GE(result.plans.size(), 1u);
  const SessionPlan& plan = result.plans.front();
  EXPECT_EQ(plan.reason, PlanReason::kDrain);
  EXPECT_EQ(plan.triggered_by_seq, 1u);
  EXPECT_EQ(plan.moves.size(), 2u);
  for (const PlanMove& move : plan.moves) EXPECT_EQ(move.from, 0u);
  EXPECT_EQ(session.num_procs(), 1u);
  EXPECT_EQ(session.num_jobs(), 4u);
  EXPECT_EQ(session.makespan(), 10);  // everything on processor 1
}

TEST(StreamSession, ExplicitReplanRespectsTheMoveBudget) {
  TriggerConfig config = quiet_trigger();
  config.move_budget = 1;
  // Skewed start: everything on processor 0.
  ClusterSession session =
      must_open(make_instance({5, 4, 3, 2}, {0, 0, 0, 0}, 2), config);
  EXPECT_EQ(session.makespan(), 14);

  Delta replan;
  replan.kind = DeltaKind::kReplan;
  const StepResult result = must_apply(session, replan, 1);
  ASSERT_EQ(result.plans.size(), 1u);
  const SessionPlan& plan = result.plans.front();
  EXPECT_EQ(plan.reason, PlanReason::kExplicit);
  EXPECT_LE(plan.moves.size(), 1u);
  EXPECT_LE(plan.makespan_after, plan.makespan_before);
  EXPECT_EQ(plan.makespan_before, 14);
  EXPECT_EQ(session.makespan(), plan.makespan_after);
}

TEST(StreamTriggers, DeltaCountFiresEveryNAppliedDeltas) {
  TriggerConfig config = quiet_trigger();
  config.delta_count = 3;
  ClusterSession session = must_open(small_instance(), config);

  std::size_t plans = 0;
  for (std::uint64_t seq = 1; seq <= 6; ++seq) {
    Delta arrive;
    arrive.kind = DeltaKind::kJobArrive;
    arrive.id = 100 + seq;
    arrive.size = 2;
    const StepResult result = must_apply(session, arrive, seq);
    plans += result.plans.size();
    if (seq == 3 || seq == 6) {
      ASSERT_EQ(result.plans.size(), 1u) << "seq " << seq;
      EXPECT_EQ(result.plans.front().reason, PlanReason::kDeltaCount);
      EXPECT_EQ(result.plans.front().triggered_by_seq, seq);
    } else {
      EXPECT_TRUE(result.plans.empty()) << "seq " << seq;
    }
  }
  EXPECT_EQ(plans, 2u);
  EXPECT_EQ(session.stats().plans_emitted, 2u);
}

TEST(StreamTriggers, RejectedDeltasDoNotAdvanceTheDeltaCountTrigger) {
  TriggerConfig config = quiet_trigger();
  config.delta_count = 2;
  ClusterSession session = must_open(small_instance(), config);

  Delta bogus;
  bogus.kind = DeltaKind::kJobDepart;
  bogus.id = 99;
  must_reject(session, bogus, 1);
  must_reject(session, bogus, 2);

  Delta arrive;
  arrive.kind = DeltaKind::kJobArrive;
  arrive.id = 50;
  arrive.size = 1;
  const StepResult first = must_apply(session, arrive, 3);
  EXPECT_TRUE(first.plans.empty());  // only 1 applied so far
  arrive.id = 51;
  const StepResult second = must_apply(session, arrive, 4);
  ASSERT_EQ(second.plans.size(), 1u);  // 2 applied deltas -> fires
  EXPECT_EQ(second.plans.front().reason, PlanReason::kDeltaCount);
}

TEST(StreamTriggers, ImbalanceFiresWhenMakespanDriftsPastTheBound) {
  TriggerConfig config = quiet_trigger();
  config.imbalance_ratio = 1.5;
  // Balanced start: {4, 4} with lower bound 4.
  ClusterSession session =
      must_open(make_instance({4, 4}, {0, 1}, 2), config);

  // A size-4 arrival pinned to processor 0 makes loads {8, 4}:
  // makespan 8 > 1.5 * lb(6) is false, so no plan yet...
  Delta arrive;
  arrive.kind = DeltaKind::kJobArrive;
  arrive.id = 10;
  arrive.size = 4;
  arrive.proc = 0;
  const StepResult quiet = must_apply(session, arrive, 1);
  EXPECT_TRUE(quiet.plans.empty());

  // ...but a second pinned arrival makes {12, 4}: 12 > 1.5 * 8 fails,
  // 12 > 1.5 * lb — lb is max(avg=8, max_job=4) = 8, so 12 == 1.5 * 8 is
  // not strictly greater; push once more to {16, 4}: 16 > 1.5 * 10.
  arrive.id = 11;
  must_apply(session, arrive, 2);
  arrive.id = 12;
  const StepResult fired = must_apply(session, arrive, 3);
  ASSERT_EQ(fired.plans.size(), 1u);
  EXPECT_EQ(fired.plans.front().reason, PlanReason::kImbalance);
  // The replan must actually reduce drift.
  EXPECT_LT(fired.plans.front().makespan_after,
            fired.plans.front().makespan_before);
}

TEST(StreamTriggers, ValidateTriggerCatchesBadConfigs) {
  EXPECT_FALSE(validate_trigger(quiet_trigger()).has_value());

  TriggerConfig config = quiet_trigger();
  config.move_frac = -0.25;
  EXPECT_TRUE(validate_trigger(config).has_value());

  config = quiet_trigger();
  config.imbalance_ratio = -1.0;
  EXPECT_TRUE(validate_trigger(config).has_value());

  config = quiet_trigger();
  config.spec.params.eps = 0.0;
  EXPECT_TRUE(validate_trigger(config).has_value());
}

// ---------------------------------------------------------------------------
// The serial replay reference.
// ---------------------------------------------------------------------------

DeltaLog sample_log(std::uint64_t seed, std::size_t events) {
  TriggerConfig trigger;
  trigger.spec = solver::BackendId::kBestOf;
  trigger.imbalance_ratio = 1.5;
  trigger.delta_count = 16;
  online::TraceOptions options;
  options.num_events = events;
  options.departure_fraction = 0.4;
  return delta_log_from_trace(mixed_corpus_instance(0, seed),
                              online::random_trace(options, seed), trigger);
}

TEST(StreamReplay, IsDeterministicAcrossRuns) {
  const DeltaLog log = sample_log(11, 120);
  const ReplayResult a =
      replay_serial_reference(log.initial, log.trigger, log.deltas);
  const ReplayResult b =
      replay_serial_reference(log.initial, log.trigger, log.deltas);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.open_digest, b.open_digest);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].digest, b.steps[i].digest) << "step " << i;
    EXPECT_EQ(a.steps[i].plans.size(), b.steps[i].plans.size());
  }
  EXPECT_EQ(a.final_stats.digest, b.final_stats.digest);
  EXPECT_EQ(a.final_stats.plans_emitted, b.final_stats.plans_emitted);
  EXPECT_GT(a.final_stats.deltas_applied, 0u);
}

TEST(StreamReplay, CachedReferenceMatchesThePlainOne) {
  // The solution cache is proven byte-identical to the serial solver
  // (docs/caching.md), so the cached replay must produce the exact same
  // transcript — this is what lets one checker serve both server modes.
  const DeltaLog log = sample_log(12, 100);
  const ReplayResult plain =
      replay_serial_reference(log.initial, log.trigger, log.deltas, {});
  ReplayOptions cached;
  cached.cached = true;
  const ReplayResult with_cache =
      replay_serial_reference(log.initial, log.trigger, log.deltas, cached);
  ASSERT_TRUE(plain.ok) << plain.error;
  ASSERT_TRUE(with_cache.ok) << with_cache.error;
  ASSERT_EQ(plain.steps.size(), with_cache.steps.size());
  for (std::size_t i = 0; i < plain.steps.size(); ++i) {
    EXPECT_EQ(plain.steps[i].digest, with_cache.steps[i].digest)
        << "step " << i;
  }
  EXPECT_EQ(plain.final_stats.digest, with_cache.final_stats.digest);
}

TEST(StreamReplay, RejectionsArePartOfTheTranscript) {
  DeltaLog log;
  log.initial = small_instance();
  log.trigger = quiet_trigger();
  Delta bogus;
  bogus.kind = DeltaKind::kJobDepart;
  bogus.id = 1234;
  log.deltas.push_back(bogus);
  Delta fine;
  fine.kind = DeltaKind::kJobDepart;
  fine.id = 0;
  log.deltas.push_back(fine);

  const ReplayResult result =
      replay_serial_reference(log.initial, log.trigger, log.deltas);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.steps.size(), 2u);
  EXPECT_FALSE(result.steps[0].applied);
  EXPECT_FALSE(result.steps[0].error.empty());
  EXPECT_EQ(result.steps[0].digest, result.open_digest);  // state untouched
  EXPECT_TRUE(result.steps[1].applied);
  EXPECT_EQ(result.final_stats.deltas_applied, 1u);
  EXPECT_EQ(result.final_stats.deltas_rejected, 1u);
}

// ---------------------------------------------------------------------------
// Delta logs (.lrbd).
// ---------------------------------------------------------------------------

TEST(StreamDeltaLog, RoundTripsThroughText) {
  const DeltaLog log = sample_log(13, 80);
  const std::string text = delta_log_to_string(log);
  std::string error;
  const auto parsed = delta_log_from_string(text, &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(delta_log_to_string(*parsed), text);

  // Same transcript after the round trip.
  const ReplayResult a =
      replay_serial_reference(log.initial, log.trigger, log.deltas);
  const ReplayResult b = replay_serial_reference(
      parsed->initial, parsed->trigger, parsed->deltas);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(a.final_stats.digest, b.final_stats.digest);
}

TEST(StreamDeltaLog, FromTraceAssignsStableJobIds) {
  const Instance initial = small_instance();
  online::TraceOptions options;
  options.num_events = 40;
  options.departure_fraction = 0.5;
  const auto events = online::random_trace(options, 5);
  const DeltaLog log =
      delta_log_from_trace(initial, events, quiet_trigger());
  ASSERT_EQ(log.deltas.size(), events.size());
  std::size_t arrivals = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (log.deltas[i].kind == DeltaKind::kJobArrive) {
      // Arrival j gets stable id initial.num_jobs() + j.
      EXPECT_EQ(log.deltas[i].id, initial.num_jobs() + arrivals);
      EXPECT_EQ(log.deltas[i].proc, kAutoPlace);
      ++arrivals;
    } else {
      EXPECT_EQ(log.deltas[i].kind, DeltaKind::kJobDepart);
      EXPECT_GE(log.deltas[i].id, initial.num_jobs());
    }
  }
  EXPECT_GT(arrivals, 0u);
}

TEST(StreamDeltaLog, RejectsMalformedText) {
  std::string error;
  EXPECT_FALSE(delta_log_from_string("not a delta log", &error));
  EXPECT_FALSE(error.empty());

  // Truncating a valid log anywhere after the schema line must fail too.
  const std::string text = delta_log_to_string(sample_log(14, 10));
  error.clear();
  EXPECT_FALSE(
      delta_log_from_string(text.substr(0, text.size() / 2), &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace lrb::stream
