// Cross-cutting boundary conditions: degenerate instances (empty, single
// processor, duplicate sizes, zero-size jobs, all-large, all-small), budget
// extremes, and malformed input robustness. Every algorithm must behave
// sensibly - never crash, never violate a budget - at the edges.

#include <gtest/gtest.h>

#include <limits>

#include "algo/cost_greedy.h"
#include "algo/cost_partition.h"
#include "algo/exact.h"
#include "algo/greedy.h"
#include "algo/local_search.h"
#include "algo/lpt.h"
#include "algo/m_partition.h"
#include "algo/move_min.h"
#include "algo/partition.h"
#include "algo/rebalancer.h"
#include "algo/thresholds.h"
#include "algo/unit_exact.h"
#include "core/analysis.h"
#include "core/generators.h"
#include "core/io.h"
#include "core/lower_bounds.h"
#include "lp/gap.h"

namespace lrb {
namespace {

Instance empty_instance(ProcId m) {
  Instance inst;
  inst.num_procs = m;
  return inst;
}

TEST(EdgeCases, EmptyInstanceEverywhere) {
  const auto inst = empty_instance(3);
  for (const auto& algo : standard_rebalancers()) {
    const auto r = algo.run(inst, 4);
    EXPECT_EQ(r.makespan, 0) << algo.name;
    EXPECT_EQ(r.moves, 0) << algo.name;
  }
  EXPECT_EQ(combined_lower_bound(inst, 2), 0);
  EXPECT_EQ(candidate_thresholds(inst), (std::vector<Size>{0}));
  const auto exact = exact_rebalance(inst);
  EXPECT_TRUE(exact.proven_optimal);
  EXPECT_EQ(exact.best.makespan, 0);
  EXPECT_EQ(st_rebalance(inst, 0).makespan, 0);
}

TEST(EdgeCases, SingleJob) {
  const auto inst = make_instance({42}, {0}, 4);
  for (const auto& algo : standard_rebalancers()) {
    const auto r = algo.run(inst, 2);
    EXPECT_EQ(r.makespan, 42) << algo.name;  // indivisible: nothing to gain
  }
  EXPECT_EQ(max_job_bound(inst), 42);
  const auto outcome = partition_rebalance_at(inst, 42);
  ASSERT_TRUE(outcome.feasible);
  EXPECT_EQ(outcome.result.makespan, 42);
}

TEST(EdgeCases, SingleProcessorAllAlgorithms) {
  const auto inst = make_instance({5, 7, 3}, {0, 0, 0}, 1);
  for (const auto& algo : standard_rebalancers()) {
    EXPECT_EQ(algo.run(inst, 3).makespan, 15) << algo.name;
  }
  CostPartitionOptions cp;
  cp.budget = 100;
  EXPECT_EQ(cost_partition_rebalance(inst, cp).makespan, 15);
  EXPECT_EQ(cost_greedy_rebalance(inst, 100).makespan, 15);
}

TEST(EdgeCases, AllJobsIdenticalSizes) {
  // Duplicate sizes stress tie-breaking paths everywhere.
  std::vector<Size> sizes(12, 7);
  std::vector<ProcId> initial(12, 0);
  const auto inst = make_instance(std::move(sizes), std::move(initial), 3);
  const auto mp = m_partition_rebalance(inst, 8);
  EXPECT_LE(mp.moves, 8);
  const auto fast = equal_size_exact_rebalance(inst, 8);
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(fast->makespan, 7 * 4);  // 12 jobs / 3 procs = 4 each
  EXPECT_LE(static_cast<double>(mp.makespan),
            1.5 * static_cast<double>(fast->makespan));
}

TEST(EdgeCases, ZeroSizeJobsAreHarmless) {
  const auto inst = make_instance({0, 5, 0, 3, 0}, {0, 0, 1, 1, 2}, 3);
  for (const auto& algo : standard_rebalancers()) {
    const auto r = algo.run(inst, 2);
    EXPECT_FALSE(validate(inst, r.assignment).has_value()) << algo.name;
    EXPECT_GE(r.makespan, 5) << algo.name;
  }
  EXPECT_EQ(move_min_lower_bound(inst, 5), 0);
  const auto greedy = move_min_greedy(inst, 5);
  ASSERT_TRUE(greedy.has_value());
  EXPECT_EQ(greedy->moves, 0);
}

TEST(EdgeCases, AllLargeJobsAtTightThreshold) {
  // Every job > T/2: PARTITION is feasible iff L_T <= m.
  const auto fits = make_instance({6, 6, 6}, {0, 0, 0}, 3);
  const auto outcome = partition_rebalance_at(fits, 6);
  ASSERT_TRUE(outcome.feasible);
  EXPECT_EQ(outcome.result.makespan, 6);  // one large job per processor
  EXPECT_EQ(outcome.large_total, 3);

  const auto overflow = make_instance({6, 6, 6, 6}, {0, 0, 0, 0}, 3);
  EXPECT_FALSE(partition_rebalance_at(overflow, 6).feasible);
}

TEST(EdgeCases, KZeroMatchesIdentityEverywhere) {
  GeneratorOptions opt;
  opt.num_jobs = 15;
  opt.num_procs = 4;
  const auto inst = random_instance(opt, 3);
  EXPECT_EQ(greedy_rebalance(inst, 0).assignment, inst.initial);
  EXPECT_EQ(m_partition_rebalance(inst, 0).makespan, inst.initial_makespan());
  ExactOptions exact_opt;
  exact_opt.max_moves = 0;
  EXPECT_EQ(exact_rebalance(inst, exact_opt).best.makespan,
            inst.initial_makespan());
}

TEST(EdgeCases, NegativeThresholdRejectedByMoveMin) {
  const auto inst = make_instance({4, 2}, {0, 0}, 2);
  // Target below every job size: only full eviction fits, but evicted jobs
  // cannot be placed anywhere -> infeasible.
  const auto exact = minimize_moves_exact(inst, 1);
  EXPECT_FALSE(exact.feasible);
  EXPECT_EQ(move_min_lower_bound(inst, 1), 2);
}

TEST(EdgeCases, HugeSizesDoNotOverflow) {
  const Size big = Size{1} << 40;
  const auto inst = make_instance({big, big, big / 2}, {0, 0, 1}, 2);
  const auto mp = m_partition_rebalance(inst, 1);
  EXPECT_LE(mp.moves, 1);
  EXPECT_GE(mp.makespan, big);
  // ceil-average = 2.5*big / 2 = 1.25*big dominates the other bounds.
  EXPECT_EQ(combined_lower_bound(inst, 1), big + big / 4);
  // LPT: big -> P0, big -> P1, big/2 -> tie broken to P0: makespan 1.5*big.
  EXPECT_EQ(lpt_schedule(inst).makespan, big + big / 2);
}

TEST(EdgeCases, LocalSearchOnAlreadyOptimal) {
  const auto inst = make_instance({4, 4, 4}, {0, 1, 2}, 3);
  LocalSearchOptions options;
  LocalSearchStats stats;
  const auto improved =
      local_search_improve(inst, no_move_result(inst), options, &stats);
  EXPECT_EQ(improved.makespan, 4);
  EXPECT_EQ(stats.rounds, 0);
}

TEST(EdgeCases, CostPartitionWithAllCostsAboveBudget) {
  const auto inst = make_instance({9, 3, 4}, {50, 50, 50}, {0, 0, 1}, 2);
  CostPartitionOptions cp;
  cp.budget = 10;  // cannot afford any move
  const auto r = cost_partition_rebalance(inst, cp);
  EXPECT_EQ(r.cost, 0);
  EXPECT_EQ(r.makespan, inst.initial_makespan());
}

TEST(EdgeCases, GapWithJobLargerThanAnyTarget) {
  GapInstance gap;
  gap.processing = {{kInfSize, kInfSize}};
  gap.cost = {{0, 0}};
  const auto result = gap_shmoys_tardos(gap, 100);
  // The job "fits" only at an astronomically large target; the binary search
  // still terminates and the result is feasible at that target.
  EXPECT_TRUE(result.feasible);
}

TEST(EdgeCases, IoRejectsGarbageWithoutCrashing) {
  const char* garbage[] = {
      "",
      "lrb-instance",
      "lrb-instance 1\nprocs x\n",
      "lrb-instance 1\nprocs 2\njobs 1\n1 1\n",          // truncated job line
      "lrb-instance 1\nprocs 2\njobs 2\n1 1 0\n",        // missing second job
      "lrb-instance 1\nprocs 0\njobs 0\n",               // zero processors
      "lrb-instance 1\nprocs 1\njobs 1\n-4 1 0\n",       // negative size
      "lrb-assignment 1\njobs 1\n0\n",                   // wrong magic
  };
  for (const char* text : garbage) {
    std::string error;
    EXPECT_FALSE(instance_from_string(text, &error).has_value()) << text;
  }
}

TEST(EdgeCases, AnalysisOnEmptyLoads) {
  const auto inst = empty_instance(2);
  const auto report = analyze_initial(inst);
  EXPECT_EQ(report.makespan, 0);
  EXPECT_EQ(report.gini, 0.0);
}

TEST(EdgeCases, ThresholdCandidatesOnUniformSizes) {
  // n identical jobs: candidate values collapse heavily; the scan must
  // still terminate and accept within budget.
  std::vector<Size> sizes(9, 4);
  std::vector<ProcId> initial(9, 0);
  const auto inst = make_instance(std::move(sizes), std::move(initial), 3);
  for (std::int64_t k : {0, 3, 6, 9}) {
    const auto r = m_partition_rebalance(inst, k);
    EXPECT_LE(r.moves, k);
    EXPECT_GE(r.makespan, 12);  // ceil-average = 12
  }
}

}  // namespace
}  // namespace lrb
