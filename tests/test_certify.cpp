// Tests for the correctness-certificate subsystem (check/): the solution
// certifier, the differential harness, and the delta-debugging shrinker.
//
// The sweep tests run every roster algorithm over seeded random instances
// drawn from EVERY generator family (all size distributions x placement
// policies x cost models) and require a clean certificate each time - the
// same oracle tools/lrb_fuzz drives, so a regression here reproduces
// deterministically.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "algo/greedy.h"
#include "algo/rebalancer.h"
#include "check/certify.h"
#include "check/differential.h"
#include "check/shrink.h"
#include "core/generators.h"
#include "core/lower_bounds.h"

namespace lrb {
namespace {

/// One deterministic generator configuration per (seed, family) pair,
/// cycling through every distribution, placement and cost model.
GeneratorOptions family_options(std::uint64_t index) {
  GeneratorOptions opt;
  opt.num_jobs = 1 + index % 17;
  opt.num_procs = static_cast<ProcId>(1 + index % 5);
  opt.min_size = index % 3 == 0 ? 0 : 1;
  opt.max_size = 1 + static_cast<Size>(index % 4) * 37;
  opt.size_dist = static_cast<SizeDistribution>(index % 5);
  opt.placement = static_cast<PlacementPolicy>((index / 5) % 5);
  opt.cost_model = static_cast<CostModel>((index / 25) % 5);
  opt.max_cost = 1 + static_cast<Cost>(index % 7);
  return opt;
}

TEST(Certify, RosterPassesOnRandomInstancesAcrossAllFamilies) {
  const auto roster = standard_rebalancers();
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    const auto opt = family_options(trial);
    const auto inst = random_instance(opt, /*seed=*/1000 + trial);
    const auto k = static_cast<std::int64_t>(trial % (inst.num_jobs() + 2));
    for (const auto& algo : roster) {
      const auto result = algo.run(inst, k);
      const auto certificate = certify_solution(
          inst, result, roster_certify_options(algo.name, inst, k, result));
      EXPECT_TRUE(certificate.ok())
          << "trial " << trial << " algorithm " << algo.name << "\n"
          << certificate.to_string();
    }
  }
}

TEST(Certify, GreedyIntegerApproximationBound) {
  // Theorem 1 as exact integer arithmetic: m * makespan <= (2m - 1) * LB
  // where LB = combined_lower_bound(k) <= OPT. No floating point anywhere.
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    const auto opt = family_options(trial);
    const auto inst = random_instance(opt, /*seed=*/5000 + trial);
    const auto k = static_cast<std::int64_t>(trial % (inst.num_jobs() + 2));
    const auto result = greedy_rebalance(inst, k);
    const auto m = static_cast<std::int64_t>(inst.num_procs);
    const auto lb = combined_lower_bound(inst, k);
    EXPECT_LE(m * result.makespan, (2 * m - 1) * lb)
        << "trial " << trial << " m=" << m << " makespan=" << result.makespan
        << " lb=" << lb;
  }
}

TEST(Certify, RecomputesEveryQuantityFromScratch) {
  const auto inst = make_instance({5, 3, 2}, {4, 1, 1}, {0, 0, 1}, 2);
  auto result = greedy_rebalance(inst, 1);
  ASSERT_TRUE(certify_solution(inst, result).ok());

  auto lying = result;
  lying.makespan -= 1;  // report a better makespan than the assignment has
  const auto cert = certify_solution(inst, lying);
  ASSERT_FALSE(cert.ok());
  EXPECT_EQ(cert.violations[0].kind, ViolationKind::kMakespanMismatch);

  auto wrong_moves = result;
  wrong_moves.moves += 1;
  const auto cert_moves = certify_solution(inst, wrong_moves);
  ASSERT_FALSE(cert_moves.ok());
  EXPECT_EQ(cert_moves.violations[0].kind, ViolationKind::kMovesMismatch);

  auto wrong_cost = result;
  wrong_cost.cost += 1;
  const auto cert_cost = certify_solution(inst, wrong_cost);
  ASSERT_FALSE(cert_cost.ok());
  EXPECT_EQ(cert_cost.violations[0].kind, ViolationKind::kCostMismatch);
}

TEST(Certify, FlagsBudgetViolations) {
  const auto inst = make_instance({5, 3, 2}, {4, 1, 1}, {0, 0, 1}, 2);
  // Move both jobs off processor 0: 2 moves, cost 4 + 1 = 5.
  const auto moved = finalize_result(inst, Assignment{1, 1, 1});

  CertifyOptions over_k;
  over_k.max_moves = 1;
  const auto cert_k = certify_solution(inst, moved, over_k);
  ASSERT_FALSE(cert_k.ok());
  EXPECT_EQ(cert_k.violations[0].kind, ViolationKind::kMoveBudget);

  CertifyOptions over_b;
  over_b.budget = 4;
  const auto cert_b = certify_solution(inst, moved, over_b);
  ASSERT_FALSE(cert_b.ok());
  EXPECT_EQ(cert_b.violations[0].kind, ViolationKind::kCostBudget);
}

TEST(Certify, FlagsStructurallyInvalidAssignments) {
  const auto inst = make_instance({5, 3}, {0, 1}, 2);
  RebalanceResult bogus;
  bogus.assignment = {0, 7};  // processor 7 does not exist
  const auto cert = certify_solution(inst, bogus);
  ASSERT_FALSE(cert.ok());
  EXPECT_EQ(cert.violations[0].kind, ViolationKind::kStructure);
}

TEST(Certify, FlagsSolutionsBeatingTheLowerBound) {
  // Under k = 0 the certified lower bound is the initial makespan. A
  // solution that moves a job anyway lands below that bound - evidence that
  // either the bound or the solution's claimed budget is broken, and the
  // certifier must say so (alongside the move-budget violation itself).
  const auto inst = make_instance({4, 4}, {0, 0}, 2);
  const auto moved = finalize_result(inst, Assignment{0, 1});
  CertifyOptions options;
  options.max_moves = 0;
  const auto cert = certify_solution(inst, moved, options);
  ASSERT_FALSE(cert.ok());
  const bool below = std::any_of(
      cert.violations.begin(), cert.violations.end(), [](const Violation& v) {
        return v.kind == ViolationKind::kBelowLowerBound;
      });
  const bool over_budget = std::any_of(
      cert.violations.begin(), cert.violations.end(), [](const Violation& v) {
        return v.kind == ViolationKind::kMoveBudget;
      });
  EXPECT_TRUE(below) << cert.to_string();
  EXPECT_TRUE(over_budget) << cert.to_string();
}

TEST(Certify, ApproxBoundCheckIsExactRational) {
  const auto inst = make_instance({3, 3, 3}, {0, 0, 0}, 3);
  const auto result = finalize_result(inst, Assignment{0, 0, 0});
  CertifyOptions options;
  // 9 <= (4/3) * 7 = 9.333... holds in rationals: 3 * 9 = 27 <= 4 * 7 = 28.
  options.bound = RatioBound{4, 3, 7, 0, "test reference"};
  EXPECT_TRUE(certify_solution(inst, result, options).ok());
  // 9 <= (4/3) * 6 = 8 fails: 27 > 24. A float comparison at tolerance 1
  // would wave this through; the rational check must not.
  options.bound = RatioBound{4, 3, 6, 0, "test reference"};
  const auto cert = certify_solution(inst, result, options);
  ASSERT_FALSE(cert.ok());
  EXPECT_EQ(cert.violations[0].kind, ViolationKind::kApproxBound);
}

// ---------------------------------------------------------------------------
// Differential harness + shrinker: the library-level version of what
// tools/lrb_fuzz exercises end to end.

/// GREEDY with Step 2 sabotaged: reinserts onto the MAX-loaded processor.
RebalanceResult broken_greedy(const Instance& instance, std::int64_t k) {
  Assignment assignment = instance.initial;
  auto load = instance.initial_loads();
  auto by_proc = instance.jobs_by_proc();
  for (auto& jobs : by_proc) {
    std::sort(jobs.begin(), jobs.end(), [&](JobId a, JobId b) {
      if (instance.sizes[a] != instance.sizes[b]) {
        return instance.sizes[a] > instance.sizes[b];
      }
      return a < b;
    });
  }
  std::vector<std::size_t> next(instance.num_procs, 0);
  std::vector<JobId> removed;
  for (std::int64_t step = 0; step < k; ++step) {
    ProcId heaviest = 0;
    for (ProcId p = 1; p < instance.num_procs; ++p) {
      if (load[p] > load[heaviest]) heaviest = p;
    }
    if (next[heaviest] >= by_proc[heaviest].size()) break;
    const JobId victim = by_proc[heaviest][next[heaviest]++];
    load[heaviest] -= instance.sizes[victim];
    removed.push_back(victim);
  }
  for (const JobId job : removed) {
    ProcId target = 0;
    for (ProcId p = 1; p < instance.num_procs; ++p) {
      if (load[p] > load[target]) target = p;
    }
    assignment[job] = target;
    load[target] += instance.sizes[job];
  }
  return finalize_result(instance, std::move(assignment));
}

TEST(Differential, CleanRosterProducesNoFindings) {
  GeneratorOptions opt;
  opt.num_jobs = 9;
  opt.num_procs = 3;
  opt.placement = PlacementPolicy::kHotspot;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto inst = random_instance(opt, seed);
    DifferentialOptions options;
    options.k = static_cast<std::int64_t>(seed % 6);
    options.budget = static_cast<std::int64_t>(seed % 9);
    const auto report = differential_check(inst, options);
    EXPECT_TRUE(report.ok()) << "seed " << seed << "\n" << report.to_string();
  }
}

TEST(Differential, CatchesTheBrokenRebalancerAndShrinksToTinyRepro) {
  // The fuzz driver's acceptance path as a unit test: the mutant must be
  // flagged within a few seeds and ddmin must cut the repro to <= 6 jobs.
  GeneratorOptions opt;
  opt.num_jobs = 10;
  opt.num_procs = 3;
  opt.placement = PlacementPolicy::kSingleProc;
  bool caught = false;
  for (std::uint64_t seed = 0; seed < 20 && !caught; ++seed) {
    const auto inst = random_instance(opt, seed);
    DifferentialOptions options;
    options.k = 4;
    options.run_cost_algorithms = false;
    options.extra.push_back(CheckedRebalancer{
        NamedRebalancer{"broken-greedy", broken_greedy},
        [](const Instance& i, std::int64_t k, const RebalanceResult& r) {
          return roster_certify_options("greedy", i, k, r);
        }});
    const auto report = differential_check(inst, options);
    if (report.ok()) continue;
    caught = true;

    const auto signatures = report.signatures();
    const auto still_fails = [&](const Instance& candidate) {
      const auto r = differential_check(candidate, options);
      for (const auto& sig : r.signatures()) {
        for (const auto& wanted : signatures) {
          if (sig == wanted) return true;
        }
      }
      return false;
    };
    const auto minimized = shrink_instance(inst, still_fails);
    EXPECT_LE(minimized.instance.num_jobs(), 6u);
    EXPECT_TRUE(still_fails(minimized.instance));
  }
  EXPECT_TRUE(caught) << "broken greedy never produced a violation";
}

TEST(Shrink, PreservesThePredicateAndShrinksMonotonically) {
  // Predicate: instance has a job of size >= 50. The minimum witness is a
  // single job; ddmin must find something no bigger than the start.
  const auto inst = make_instance({60, 1, 2, 3, 55, 4, 5, 6},
                                  {0, 0, 1, 1, 2, 2, 0, 1}, 3);
  const auto has_big = [](const Instance& candidate) {
    return std::any_of(candidate.sizes.begin(), candidate.sizes.end(),
                       [](Size s) { return s >= 50; });
  };
  const auto shrunk = shrink_instance(inst, has_big);
  EXPECT_TRUE(has_big(shrunk.instance));
  EXPECT_LE(shrunk.instance.num_jobs(), 1u);
  EXPECT_LE(shrunk.instance.num_procs, 1u);
  // Value shrinking pulls the witness down to the predicate's edge.
  EXPECT_EQ(*std::max_element(shrunk.instance.sizes.begin(),
                              shrunk.instance.sizes.end()),
            50);
}

TEST(Shrink, RespectsTheEvaluationBudget) {
  GeneratorOptions opt;
  opt.num_jobs = 30;
  opt.num_procs = 4;
  const auto inst = random_instance(opt, 7);
  std::size_t calls = 0;
  ShrinkOptions options;
  options.max_evaluations = 10;
  const auto accept_all = [&](const Instance&) {
    ++calls;
    return true;
  };
  const auto shrunk = shrink_instance(inst, accept_all, options);
  EXPECT_LE(shrunk.evaluations, options.max_evaluations);
  EXPECT_LE(calls, options.max_evaluations);
}

}  // namespace
}  // namespace lrb
