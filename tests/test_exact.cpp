// Tests for the exact solvers: branch-and-bound OPTIMAL, the equal-size
// polynomial special case, and exact/greedy move minimization (§5).

#include <gtest/gtest.h>

#include <algorithm>

#include "algo/exact.h"
#include "algo/greedy.h"
#include "algo/m_partition.h"
#include "algo/move_min.h"
#include "algo/unit_exact.h"
#include "core/generators.h"
#include "core/lower_bounds.h"

namespace lrb {
namespace {

// ------------------------------------------------------------------- exact

TEST(Exact, HandSolvedInstance) {
  // P0: {5, 4, 3} (12), P1: {} -> with k=1 move the 5: {7, 5} -> 7.
  const auto inst = make_instance({5, 4, 3}, {0, 0, 0}, 2);
  ExactOptions opt;
  opt.max_moves = 1;
  auto r = exact_rebalance(inst, opt);
  ASSERT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.best.makespan, 7);
  EXPECT_LE(r.best.moves, 1);

  opt.max_moves = 2;  // move 4 and 3 -> {5, 7}? better: 5 stays, {5,4}|{3}=9|3?
  r = exact_rebalance(inst, opt);
  ASSERT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.best.makespan, 7);  // perfect split 6 impossible: {5,4,3} -> 7/5

  opt.max_moves = kInfSize;
  r = exact_rebalance(inst, opt);
  EXPECT_EQ(r.best.makespan, 7);  // unconstrained optimum is also 7
}

TEST(Exact, ZeroMovesEqualsInitial) {
  const auto inst = make_instance({9, 2, 4}, {0, 1, 2}, 3);
  ExactOptions opt;
  opt.max_moves = 0;
  const auto r = exact_rebalance(inst, opt);
  EXPECT_EQ(r.best.makespan, inst.initial_makespan());
  EXPECT_EQ(r.best.moves, 0);
}

TEST(Exact, MonotoneInMoveBudget) {
  GeneratorOptions opt;
  opt.num_jobs = 9;
  opt.num_procs = 3;
  opt.max_size = 13;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const auto inst = random_instance(opt, seed);
    Size previous = kInfSize;
    for (std::int64_t k = 0; k <= 5; ++k) {
      ExactOptions exact_opt;
      exact_opt.max_moves = k;
      const auto r = exact_rebalance(inst, exact_opt);
      ASSERT_TRUE(r.proven_optimal);
      EXPECT_LE(r.best.makespan, previous) << "seed=" << seed << " k=" << k;
      EXPECT_GE(r.best.makespan, combined_lower_bound(inst, k));
      EXPECT_LE(r.best.moves, k);
      previous = r.best.makespan;
    }
  }
}

TEST(Exact, RespectsCostBudget) {
  auto inst = make_instance({8, 6, 4}, {5, 2, 1}, {0, 0, 0}, 2);
  ExactOptions opt;
  opt.budget = 0;
  auto r = exact_rebalance(inst, opt);
  EXPECT_EQ(r.best.makespan, 18);
  opt.budget = 1;  // can only afford moving the size-4 job
  r = exact_rebalance(inst, opt);
  EXPECT_EQ(r.best.makespan, 14);
  EXPECT_LE(r.best.cost, 1);
  opt.budget = 3;  // afford jobs of costs 2+1: {8}|{6,4} -> 10
  r = exact_rebalance(inst, opt);
  EXPECT_EQ(r.best.makespan, 10);
  EXPECT_LE(r.best.cost, 3);
}

TEST(Exact, AgreesWithBruteForceEnumeration) {
  GeneratorOptions opt;
  opt.num_jobs = 7;
  opt.num_procs = 3;
  opt.max_size = 10;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const auto inst = random_instance(opt, seed);
    for (std::int64_t k : {1, 3}) {
      // Brute force over all 3^7 assignments.
      Size brute = kInfSize;
      const auto n = inst.num_jobs();
      std::vector<ProcId> a(n, 0);
      for (std::size_t code = 0; code < 2187; ++code) {  // 3^7
        std::size_t c = code;
        for (std::size_t j = 0; j < n; ++j) {
          a[j] = static_cast<ProcId>(c % 3);
          c /= 3;
        }
        if (moves_used(inst, a) <= k) brute = std::min(brute, makespan(inst, a));
      }
      ExactOptions exact_opt;
      exact_opt.max_moves = k;
      const auto r = exact_rebalance(inst, exact_opt);
      ASSERT_TRUE(r.proven_optimal);
      EXPECT_EQ(r.best.makespan, brute) << "seed=" << seed << " k=" << k;
    }
  }
}

// -------------------------------------------------------------- equal sizes

TEST(EqualSize, RejectsMixedSizes) {
  const auto inst = make_instance({1, 2}, {0, 0}, 2);
  EXPECT_FALSE(equal_size_exact_rebalance(inst, 5).has_value());
}

TEST(EqualSize, HandSolved) {
  // Counts {6, 1, 1} with k=2 -> best cap 4: move 2 jobs off P0.
  const auto inst = unit_instance({6, 1, 1});
  const auto r = equal_size_exact_rebalance(inst, 2);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->makespan, 4);
  EXPECT_EQ(r->moves, 2);
  // k=4 reaches the perfect 3/3/2.
  const auto r4 = equal_size_exact_rebalance(inst, 4);
  ASSERT_TRUE(r4.has_value());
  EXPECT_EQ(r4->makespan, 3);
}

TEST(EqualSize, MatchesBranchAndBound) {
  Rng rng(88);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::int64_t> counts(3);
    for (auto& c : counts) c = rng.uniform_int(0, 4);
    if (counts[0] + counts[1] + counts[2] == 0) continue;
    const auto inst = unit_instance(counts);
    for (std::int64_t k : {0, 1, 2, 5}) {
      const auto fast = equal_size_exact_rebalance(inst, k);
      ASSERT_TRUE(fast.has_value());
      ExactOptions opt;
      opt.max_moves = k;
      const auto slow = exact_rebalance(inst, opt);
      ASSERT_TRUE(slow.proven_optimal);
      EXPECT_EQ(fast->makespan, slow.best.makespan)
          << "trial=" << trial << " k=" << k;
      EXPECT_LE(fast->moves, k);
    }
  }
}

TEST(EqualSize, ScalesBySizeFactor) {
  std::vector<Size> sizes(8, 7);  // all size 7
  std::vector<ProcId> initial{0, 0, 0, 0, 0, 0, 1, 1};
  const auto inst = make_instance(std::move(sizes), std::move(initial), 2);
  const auto r = equal_size_exact_rebalance(inst, 2);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->makespan, 7 * 4);
}

// ---------------------------------------------------------------- move-min

TEST(MoveMin, LowerBoundOnFixture) {
  const auto inst = make_instance({8, 2, 5}, {0, 0, 1}, 3);
  EXPECT_EQ(move_min_lower_bound(inst, 10), 0);
  EXPECT_EQ(move_min_lower_bound(inst, 9), 1);
  EXPECT_EQ(move_min_lower_bound(inst, 7), 1);  // evict the 8
  EXPECT_EQ(move_min_lower_bound(inst, 1), 3);  // evict 8,2 and 5... 2 fits? no: cap 1 < 2
}

TEST(MoveMin, GreedySucceedsAndIsOptimalOnEasyInstances) {
  GeneratorOptions opt;
  opt.num_jobs = 12;
  opt.num_procs = 4;
  opt.placement = PlacementPolicy::kHotspot;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const auto inst = random_instance(opt, seed);
    // A generous target: the unconstrained GREEDY result + slack.
    const Size target = greedy_rebalance(inst, 100).makespan * 2;
    const auto greedy = move_min_greedy(inst, target);
    ASSERT_TRUE(greedy.has_value()) << "seed=" << seed;
    EXPECT_EQ(greedy->moves, move_min_lower_bound(inst, target));
    const auto l = loads(inst, greedy->assignment);
    for (Size load : l) EXPECT_LE(load, target);
  }
}

TEST(MoveMin, ExactMatchesGreedyWhenGreedyWorks) {
  const auto inst = make_instance({6, 5, 4, 3}, {0, 0, 0, 0}, 3);
  const Size target = 8;
  const auto exact = minimize_moves_exact(inst, target);
  ASSERT_TRUE(exact.feasible);
  ASSERT_TRUE(exact.proven_optimal);
  // Keep {4,3}? No: keep prefix {3,4} sum 7 <= 8 -> evict 5 and 6 -> 2 moves.
  EXPECT_EQ(exact.best.moves, 2);
  const auto l = loads(inst, exact.best.assignment);
  for (Size load : l) EXPECT_LE(load, target);
}

TEST(MoveMin, InfeasibleTargetReported) {
  const auto inst = make_instance({10, 10, 10}, {0, 0, 0}, 2);
  const auto exact = minimize_moves_exact(inst, 9);  // below max job
  EXPECT_FALSE(exact.feasible);
  const auto exact2 = minimize_moves_exact(inst, 15);  // 3 jobs of 10 on 2 procs
  EXPECT_FALSE(exact2.feasible);
}

TEST(MoveMin, ExactNeverBelowLowerBound) {
  GeneratorOptions opt;
  opt.num_jobs = 9;
  opt.num_procs = 3;
  opt.max_size = 9;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const auto inst = random_instance(opt, seed);
    const Size target = std::max(average_load_bound(inst), max_job_bound(inst)) + 3;
    const auto exact = minimize_moves_exact(inst, target);
    if (!exact.feasible) continue;
    ASSERT_TRUE(exact.proven_optimal);
    EXPECT_GE(exact.best.moves, move_min_lower_bound(inst, target));
    const auto l = loads(inst, exact.best.assignment);
    for (Size load : l) EXPECT_LE(load, target);
  }
}

TEST(MoveMin, CostObjective) {
  // Two ways to relieve P0 (load 12, cap 8): move the 6 (cost 9) or move
  // both 4s (cost 2+2). Count objective prefers the 6; cost prefers the 4s.
  const auto inst =
      make_instance({6, 4, 4, 2}, {9, 2, 2, 1}, {0, 0, 0, 1}, 3);
  const auto by_count = minimize_moves_exact(inst, 8, false);
  ASSERT_TRUE(by_count.feasible);
  EXPECT_EQ(by_count.best.moves, 1);
  const auto by_cost = minimize_moves_exact(inst, 8, true);
  ASSERT_TRUE(by_cost.feasible);
  EXPECT_EQ(by_cost.best.cost, 4);
  EXPECT_EQ(by_cost.best.moves, 2);
}

}  // namespace
}  // namespace lrb

#include "algo/two_proc_exact.h"

namespace lrb {
namespace {

TEST(TwoProcExact, RejectsOtherMachineCounts) {
  const auto inst = make_instance({1, 2}, {0, 1}, 3);
  EXPECT_FALSE(two_proc_exact_rebalance(inst, 5).has_value());
}

TEST(TwoProcExact, HandSolved) {
  // P0: {5,4,3} (12), P1: {} -> k=1 moves the 5: makespan 7; k>=2 still 7
  // (perfect 6 needs fractions).
  const auto inst = make_instance({5, 4, 3}, {0, 0, 0}, 2);
  const auto r1 = two_proc_exact_rebalance(inst, 1);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->makespan, 7);
  EXPECT_LE(r1->moves, 1);
  const auto r3 = two_proc_exact_rebalance(inst, 3);
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(r3->makespan, 7);
}

TEST(TwoProcExact, MatchesBranchAndBound) {
  GeneratorOptions opt;
  opt.num_jobs = 11;
  opt.num_procs = 2;
  opt.max_size = 25;
  opt.placement = PlacementPolicy::kHotspot;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto inst = random_instance(opt, seed);
    for (std::int64_t k : {0, 1, 2, 4, 11}) {
      const auto dp = two_proc_exact_rebalance(inst, k);
      ASSERT_TRUE(dp.has_value());
      ExactOptions exact_opt;
      exact_opt.max_moves = k;
      const auto bb = exact_rebalance(inst, exact_opt);
      ASSERT_TRUE(bb.proven_optimal);
      EXPECT_EQ(dp->makespan, bb.best.makespan)
          << "seed=" << seed << " k=" << k;
      EXPECT_LE(dp->moves, k);
    }
  }
}

TEST(TwoProcExact, ScalesToLargerInstances) {
  GeneratorOptions opt;
  opt.num_jobs = 120;
  opt.num_procs = 2;
  opt.max_size = 200;
  opt.placement = PlacementPolicy::kSingleProc;
  const auto inst = random_instance(opt, 5);
  const auto r = two_proc_exact_rebalance(inst, 30);
  ASSERT_TRUE(r.has_value());
  // The DP optimum is sandwiched between the certified lower bound and any
  // 1.5-guaranteed heuristic solution at the same budget.
  EXPECT_GE(r->makespan, combined_lower_bound(inst, 30));
  EXPECT_LE(r->makespan, m_partition_rebalance(inst, 30).makespan);
  EXPECT_LE(r->moves, 30);
}

TEST(TwoProcExact, RespectsCellLimit) {
  GeneratorOptions opt;
  opt.num_jobs = 50;
  opt.num_procs = 2;
  opt.max_size = 100000;
  const auto inst = random_instance(opt, 1);
  EXPECT_FALSE(two_proc_exact_rebalance(inst, 5, 1 << 10).has_value());
}

TEST(TwoProcExact, ZeroMovesIsIdentity) {
  const auto inst = make_instance({7, 2, 5}, {0, 0, 1}, 2);
  const auto r = two_proc_exact_rebalance(inst, 0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->assignment, inst.initial);
  EXPECT_EQ(r->makespan, 9);
}

}  // namespace
}  // namespace lrb
