// Experiment E1 (Theorem 1): GREEDY is a tight (2 - 1/m)-approximation.
//
// Part A reproduces the paper's tightness family: one job of size m plus
// m^2 - m unit jobs, k = m - 1. With the adversarial reinsertion order the
// measured ratio equals 2 - 1/m exactly for every m.
//
// Part B measures GREEDY against the exact optimum on random families: the
// worst observed ratio never crosses the Theorem 1 bound, and typical
// ratios sit far below it.

#include <algorithm>
#include <iostream>

#include "algo/greedy.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace lrb;
  using namespace lrb::bench;
  if (!parse_bench_flags(argc, argv)) return 2;

  std::cout << "E1 / Theorem 1: GREEDY approximation ratio (bound 2 - 1/m)\n\n";
  std::cout << "Part A - the paper's tight family (adversarial order):\n";
  Table tight({"m", "k", "OPT", "GREEDY", "ratio", "2 - 1/m", "tight"});
  for (ProcId m = 2; m <= smoke_cap<ProcId>(10, 3); ++m) {
    const auto family = greedy_tight_instance(m);
    const auto result =
        greedy_rebalance(family.instance, family.k, GreedyOrder::kSmallestFirst);
    const double measured = ratio(result.makespan, family.opt);
    const double bound = 2.0 - 1.0 / static_cast<double>(m);
    tight.row()
        .add(static_cast<std::int64_t>(m))
        .add(family.k)
        .add(family.opt)
        .add(result.makespan)
        .add(measured, 5)
        .add(bound, 5)
        .add(measured == bound);
  }
  tight.print(std::cout);

  std::cout << "\nPart B - random families vs exact OPT (50 seeds each, k in "
               "{1,3,6}):\n";
  Table random_table({"family", "k", "mean ratio", "p90 ratio", "max ratio",
                      "bound", "violations"});
  for (const auto& family : small_families()) {
    for (std::int64_t k : {1, 3, 6}) {
      std::vector<double> ratios;
      int violations = 0;
      const double bound =
          2.0 - 1.0 / static_cast<double>(family.options.num_procs);
      for (std::uint64_t seed = 0; seed < smoke_cap<std::uint64_t>(50, 2);
           ++seed) {
        const auto inst = random_instance(family.options, seed);
        const Size opt = exact_opt_moves(inst, k);
        for (auto order : {GreedyOrder::kAsRemoved, GreedyOrder::kLargestFirst,
                           GreedyOrder::kSmallestFirst}) {
          const double r = ratio(greedy_rebalance(inst, k, order).makespan, opt);
          ratios.push_back(r);
          if (r > bound + 1e-9) ++violations;
        }
      }
      const auto summary = summarize(ratios);
      random_table.row()
          .add(family.name)
          .add(k)
          .add(summary.mean, 4)
          .add(summary.p90, 4)
          .add(summary.max, 4)
          .add(bound, 4)
          .add(static_cast<std::int64_t>(violations));
    }
  }
  random_table.print(std::cout);
  std::cout << "\nExpected shape: Part A ratios equal the bound exactly; "
               "Part B never violates it and averages close to 1.\n";
  return 0;
}
