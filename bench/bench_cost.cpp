// Experiment E5 (§3.2): the arbitrary-cost PARTITION achieves ~1.5x the
// budgeted optimum across cost models, never exceeding the budget, and beats
// the Shmoys-Tardos 2x baseline on quality.

#include <iostream>

#include "algo/cost_partition.h"
#include "bench_common.h"
#include "lp/gap.h"

int main(int argc, char** argv) {
  using namespace lrb;
  using namespace lrb::bench;
  if (!parse_bench_flags(argc, argv)) return 2;

  std::cout << "E5 / §3.2: arbitrary relocation costs under budget B\n\n";
  Table table({"cost model", "B", "mean cp", "max cp", "mean ST", "max ST",
               "budget viol", "bound"});

  struct Model {
    const char* name;
    CostModel model;
  };
  const Model models[] = {{"uniform", CostModel::kUniform},
                          {"proportional", CostModel::kProportional},
                          {"inverse", CostModel::kInverse},
                          {"two-valued", CostModel::kTwoValued}};
  const double bound = 1.5 * 1.05 * 1.02;

  for (const auto& model : models) {
    GeneratorOptions gen;
    gen.num_jobs = 9;
    gen.num_procs = 3;
    gen.max_size = 19;
    gen.placement = PlacementPolicy::kHotspot;
    gen.cost_model = model.model;
    gen.min_cost = 1;
    gen.max_cost = 9;
    for (Cost budget : {Cost{3}, Cost{10}, Cost{30}}) {
      std::vector<double> cp_ratios, st_ratios;
      int violations = 0;
      for (std::uint64_t seed = 0; seed < smoke_cap<std::uint64_t>(25, 2);
           ++seed) {
        const auto inst = random_instance(gen, seed);
        ExactOptions exact_opt;
        exact_opt.budget = budget;
        const auto exact = exact_rebalance(inst, exact_opt);

        CostPartitionOptions cp;
        cp.budget = budget;
        const auto partition = cost_partition_rebalance(inst, cp);
        if (partition.cost > budget) ++violations;
        cp_ratios.push_back(ratio(partition.makespan, exact.best.makespan));

        const auto st = st_rebalance(inst, budget);
        if (st.cost > budget) ++violations;
        st_ratios.push_back(ratio(st.makespan, exact.best.makespan));
      }
      const auto cp_summary = summarize(cp_ratios);
      const auto st_summary = summarize(st_ratios);
      table.row()
          .add(model.name)
          .add(budget)
          .add(cp_summary.mean, 4)
          .add(cp_summary.max, 4)
          .add(st_summary.mean, 4)
          .add(st_summary.max, 4)
          .add(static_cast<std::int64_t>(violations))
          .add(bound, 4);
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: cost-partition max <= ~1.61 "
               "(1.5*(1+eps)(1+alpha)); Shmoys-Tardos max <= 2; zero budget "
               "violations; cost-partition's mean below ST's on most rows - "
               "the paper's claimed improvement over [14].\n";
  return 0;
}
