// Experiment E2 (Theorems 2-3): PARTITION / M-PARTITION are tight
// 1.5-approximations.
//
// Part A: the paper's two-processor tight instance hits 1.5 exactly.
// Part B: M-PARTITION vs the exact optimum across random families and move
// budgets - the worst ratio never crosses 1.5 and GREEDY is strictly worse
// on its bad cases.
// Part C: the accepted threshold is never above the true optimum (Lemma 6).

#include <algorithm>
#include <iostream>

#include "algo/greedy.h"
#include "algo/m_partition.h"
#include "algo/partition.h"
#include "algo/two_proc_exact.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace lrb;
  using namespace lrb::bench;
  if (!parse_bench_flags(argc, argv)) return 2;

  std::cout << "E2 / Theorems 2-3: PARTITION family, bound 1.5\n\n";
  std::cout << "Part A - the paper's tight example:\n";
  {
    const auto family = partition_tight_instance();
    const auto outcome = partition_rebalance_at(family.instance, family.opt);
    MPartitionStats stats;
    const auto m_result =
        m_partition_rebalance(family.instance, family.k, &stats);
    Table table({"algorithm", "OPT", "makespan", "moves", "ratio"});
    table.row()
        .add("partition@OPT")
        .add(family.opt)
        .add(outcome.result.makespan)
        .add(outcome.result.moves)
        .add(ratio(outcome.result.makespan, family.opt), 4);
    table.row()
        .add("m-partition")
        .add(family.opt)
        .add(m_result.makespan)
        .add(m_result.moves)
        .add(ratio(m_result.makespan, family.opt), 4);
    table.print(std::cout);
  }

  std::cout << "\nPart B - random families vs exact OPT (40 seeds, k in "
               "{1,2,4,8}):\n";
  Table table({"family", "k", "mean mp", "max mp", "mean greedy", "max greedy",
               "mp viol>1.5"});
  for (const auto& family : small_families()) {
    for (std::int64_t k : {1, 2, 4, 8}) {
      std::vector<double> mp_ratios, greedy_ratios;
      int violations = 0;
      for (std::uint64_t seed = 0; seed < smoke_cap<std::uint64_t>(40, 2);
           ++seed) {
        const auto inst = random_instance(family.options, seed);
        const Size opt = exact_opt_moves(inst, k);
        const double mp = ratio(m_partition_rebalance(inst, k).makespan, opt);
        const double greedy = ratio(greedy_rebalance(inst, k).makespan, opt);
        mp_ratios.push_back(mp);
        greedy_ratios.push_back(greedy);
        if (mp > 1.5 + 1e-9) ++violations;
      }
      const auto mp_summary = summarize(mp_ratios);
      const auto greedy_summary = summarize(greedy_ratios);
      table.row()
          .add(family.name)
          .add(k)
          .add(mp_summary.mean, 4)
          .add(mp_summary.max, 4)
          .add(greedy_summary.mean, 4)
          .add(greedy_summary.max, 4)
          .add(static_cast<std::int64_t>(violations));
    }
  }
  table.print(std::cout);

  std::cout << "\nPart C - accepted threshold <= OPT (Lemma 6), 200 cases:\n";
  {
    int checked = 0, ok = 0;
    for (const auto& family : small_families()) {
      for (std::uint64_t seed = 0; seed < smoke_cap<std::uint64_t>(10, 1);
           ++seed) {
        const auto inst = random_instance(family.options, seed);
        for (std::int64_t k : {1, 3, 6, 10}) {
          const Size opt = exact_opt_moves(inst, k);
          MPartitionStats stats;
          (void)m_partition_rebalance(inst, k, &stats);
          ++checked;
          ok += stats.accepted_threshold <= opt ? 1 : 0;
        }
      }
    }
    std::cout << "  threshold <= OPT in " << ok << "/" << checked
              << " cases\n";
  }
  std::cout << "\nPart D - two-processor EXACT ground truth at n = 60 "
               "(subset-sum DP, 30 seeds):\n";
  {
    GeneratorOptions gen;
    gen.num_jobs = 60;
    gen.num_procs = 2;
    gen.max_size = 200;
    gen.placement = PlacementPolicy::kHotspot;
    Table dp_table({"k", "mean mp", "max mp", "mean greedy", "max greedy",
                    "viol>1.5"});
    for (std::int64_t k : {2, 5, 10, 20}) {
      std::vector<double> mp_ratios, greedy_ratios;
      int violations = 0;
      for (std::uint64_t seed = 0; seed < smoke_cap<std::uint64_t>(30, 2);
           ++seed) {
        const auto inst = random_instance(gen, seed);
        const auto exact = two_proc_exact_rebalance(inst, k);
        if (!exact.has_value()) continue;
        const double mp =
            ratio(m_partition_rebalance(inst, k).makespan, exact->makespan);
        mp_ratios.push_back(mp);
        greedy_ratios.push_back(
            ratio(greedy_rebalance(inst, k).makespan, exact->makespan));
        if (mp > 1.5 + 1e-9) ++violations;
      }
      dp_table.row()
          .add(k)
          .add(summarize(mp_ratios).mean, 4)
          .add(summarize(mp_ratios).max, 4)
          .add(summarize(greedy_ratios).mean, 4)
          .add(summarize(greedy_ratios).max, 4)
          .add(static_cast<std::int64_t>(violations));
    }
    dp_table.print(std::cout);
  }

  std::cout << "\nExpected shape: Part A ratio exactly 1.5; Part B max <= 1.5 "
               "with zero violations; Part C 100%; Part D confirms the bound "
               "holds against true optima well beyond branch-and-bound "
               "scale.\n";
  return 0;
}
