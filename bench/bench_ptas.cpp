// Experiment E6 (§4): the PTAS tracks (1 + eps) * OPT with cost <= B, and
// its running time / DP state count grows steeply as eps shrinks - the
// trade-off that makes the 1.5-approximation "more likely to be useful in
// practice" (paper, §1).
//
// Engine-bench mode (--json PATH): measures the packed-state DP engine
// against the retained reference implementation (check/ptas_reference) on
// the same corpus, in the same binary - states/sec, peak resident state
// bytes (via a size-accounting allocator), and per-guess latency - and
// writes a lrb-ptas-bench-v1 JSON record. --min-speedup / --min-mem-ratio
// turn the relative numbers into a CI gate (hardware-independent: both
// engines run on the same machine in the same process).
//
//   bench_ptas                                  # E6 quality table
//   bench_ptas --smoke                          # tiny E6 (ctest bench-smoke)
//   bench_ptas --json out.json --min-speedup 2 --min-mem-ratio 3

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "algo/ptas.h"
#include "bench_common.h"
#include "check/ptas_reference.h"
#include "util/timer.h"

// ---- size-accounting allocator (whole bench binary) -----------------------
// Every allocation carries a 16-byte size header so current/peak resident
// heap bytes can be read around a region of interest. Single-threaded use.

namespace {
std::atomic<std::size_t> g_current_bytes{0};
std::atomic<std::size_t> g_peak_bytes{0};

void note_alloc(std::size_t size) {
  const std::size_t current =
      g_current_bytes.fetch_add(size, std::memory_order_relaxed) + size;
  std::size_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (current > peak && !g_peak_bytes.compare_exchange_weak(
                               peak, current, std::memory_order_relaxed)) {
  }
}

/// Resets the high-water mark to the current level; the next peak reading
/// is relative to this point.
void reset_peak() {
  g_peak_bytes.store(g_current_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

std::size_t peak_delta_since_reset_base() {
  return g_peak_bytes.load(std::memory_order_relaxed);
}

constexpr std::size_t kHeader = 16;  // preserves max_align_t alignment
}  // namespace

void* operator new(std::size_t size) {
  const std::size_t want = size == 0 ? 1 : size;
  auto* raw = static_cast<unsigned char*>(std::malloc(want + kHeader));
  if (raw == nullptr) throw std::bad_alloc();
  std::memcpy(raw, &want, sizeof(want));
  note_alloc(want);
  return raw + kHeader;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept {
  if (p == nullptr) return;
  auto* raw = static_cast<unsigned char*>(p) - kHeader;
  std::size_t size = 0;
  std::memcpy(&size, raw, sizeof(size));
  g_current_bytes.fetch_sub(size, std::memory_order_relaxed);
  std::free(raw);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace {

using namespace lrb;
using namespace lrb::bench;

struct EngineStats {
  std::size_t states = 0;           // timed passes (throughput numerator)
  double seconds = 0.0;             // timed passes (throughput denominator)
  std::size_t cold_states = 0;      // one cold evaluation per instance
  std::size_t sum_peak_bytes = 0;   // Σ per-instance cold-run peak deltas
  std::size_t peak_state_bytes = 0;  // max per-guess peak delta over corpus
  std::vector<double> per_guess_ms;

  [[nodiscard]] double states_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(states) / seconds : 0.0;
  }
  [[nodiscard]] double bytes_per_state() const {
    return cold_states > 0 ? static_cast<double>(sum_peak_bytes) /
                                 static_cast<double>(cold_states)
                           : 0.0;
  }
};

struct LatencySummary {
  double mean = 0.0, p50 = 0.0, max = 0.0;
};

LatencySummary summarize_latency(std::vector<double> ms) {
  LatencySummary out;
  if (ms.empty()) return out;
  std::sort(ms.begin(), ms.end());
  double total = 0.0;
  for (const double v : ms) total += v;
  out.mean = total / static_cast<double>(ms.size());
  out.p50 = ms[ms.size() / 2];
  out.max = ms.back();
  return out;
}

std::vector<Instance> bench_corpus(std::size_t count) {
  std::vector<Instance> corpus;
  corpus.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    GeneratorOptions gen;
    gen.num_jobs = 14;
    gen.num_procs = 4;
    gen.min_size = 1;
    gen.max_size = 100;
    gen.size_dist = static_cast<SizeDistribution>(i % 5);
    gen.placement = static_cast<PlacementPolicy>((i / 5) % 5);
    gen.cost_model = static_cast<CostModel>((i / 25) % 5);
    gen.max_cost = 10;
    corpus.push_back(random_instance(gen, 9000 + i));
  }
  return corpus;
}

constexpr double kBenchEps = 0.4;
constexpr std::size_t kStateLimit = 4'000'000;

int run_engine_bench(const std::string& json_path, double min_speedup,
                     double min_mem_ratio) {
  const std::size_t corpus_size = smoke_cap<std::size_t>(24, 4);
  const int reps = smoke_cap(5, 1);
  const auto corpus = bench_corpus(corpus_size);
  std::vector<Size> guesses(corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    guesses[i] = ptas_scan_start(corpus[i], kInfCost);
  }

  // Peak resident state bytes: one cold (fresh-scratch) evaluation per
  // instance so the DP's real footprint - not a warmed arena's zero - is
  // what the high-water mark sees.
  EngineStats engine;
  EngineStats reference;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    {
      PtasScratch cold;
      reset_peak();
      const auto base = peak_delta_since_reset_base();
      const auto out = ptas_probe_guess(corpus[i], guesses[i], kBenchEps,
                                        kInfCost, kStateLimit, cold);
      const std::size_t delta = peak_delta_since_reset_base() - base;
      engine.sum_peak_bytes += delta;
      engine.peak_state_bytes = std::max(engine.peak_state_bytes, delta);
      engine.cold_states += out.states;
    }
    {
      reset_peak();
      const auto base = peak_delta_since_reset_base();
      const auto out = ptas_reference_guess(corpus[i], guesses[i], kBenchEps,
                                            kInfCost, kStateLimit);
      const std::size_t delta = peak_delta_since_reset_base() - base;
      reference.sum_peak_bytes += delta;
      reference.peak_state_bytes = std::max(reference.peak_state_bytes, delta);
      reference.cold_states += out.states;
    }
  }
  if (engine.cold_states != reference.cold_states) {
    std::cerr << "bench_ptas: state-count mismatch between engines ("
              << engine.cold_states << " vs " << reference.cold_states
              << ") - differential contract broken\n";
    return 1;
  }

  // Throughput: warmed scratch, `reps` passes per instance, keeping the
  // minimum latency per (engine, instance) so scheduler noise on a shared
  // runner cannot fail the gate. The reference has no scratch to warm (it
  // allocates per call, which is exactly the engine difference measured).
  PtasScratch scratch;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    (void)ptas_probe_guess(corpus[i], guesses[i], kBenchEps, kInfCost,
                           kStateLimit, scratch);  // warm all shapes
  }
  // Interleaved per instance: a load spike on a shared runner degrades the
  // adjacent engine and reference timings together instead of biasing one.
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    double engine_best_ms = 0.0;
    double reference_best_ms = 0.0;
    std::size_t states = 0;
    for (int rep = 0; rep < reps; ++rep) {
      Timer engine_timer;
      const auto out = ptas_probe_guess(corpus[i], guesses[i], kBenchEps,
                                        kInfCost, kStateLimit, scratch);
      const double engine_ms = engine_timer.millis();
      Timer reference_timer;
      (void)ptas_reference_guess(corpus[i], guesses[i], kBenchEps, kInfCost,
                                 kStateLimit);
      const double reference_ms = reference_timer.millis();
      if (rep == 0 || engine_ms < engine_best_ms) engine_best_ms = engine_ms;
      if (rep == 0 || reference_ms < reference_best_ms) {
        reference_best_ms = reference_ms;
      }
      states = out.states;
    }
    engine.per_guess_ms.push_back(engine_best_ms);
    engine.seconds += engine_best_ms / 1000.0;
    engine.states += states;
    reference.per_guess_ms.push_back(reference_best_ms);
    reference.seconds += reference_best_ms / 1000.0;
    reference.states += states;
  }

  const double speedup = reference.states_per_sec() > 0.0
                             ? engine.states_per_sec() /
                                   reference.states_per_sec()
                             : 0.0;
  const double mem_ratio = engine.bytes_per_state() > 0.0
                               ? reference.bytes_per_state() /
                                     engine.bytes_per_state()
                               : 0.0;
  const auto engine_lat = summarize_latency(engine.per_guess_ms);
  const auto reference_lat = summarize_latency(reference.per_guess_ms);

  std::cout << "PTAS DP engine bench (eps=" << kBenchEps << ", "
            << corpus.size() << " instances x " << reps << " reps)\n"
            << "  engine:    " << engine.states_per_sec() << " states/s, "
            << engine.bytes_per_state() << " bytes/state, mean "
            << engine_lat.mean << " ms/guess\n"
            << "  reference: " << reference.states_per_sec() << " states/s, "
            << reference.bytes_per_state() << " bytes/state, mean "
            << reference_lat.mean << " ms/guess\n"
            << "  speedup (states/s): " << speedup
            << "  memory ratio (bytes/state): " << mem_ratio << "\n";

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "bench_ptas: cannot write " << json_path << "\n";
      return 1;
    }
    const auto emit_engine = [&](const char* name, const EngineStats& s,
                                 const LatencySummary& lat) {
      json << "  \"" << name << "\": {\n"
           << "    \"states\": " << s.states << ",\n"
           << "    \"seconds\": " << s.seconds << ",\n"
           << "    \"states_per_sec\": " << s.states_per_sec() << ",\n"
           << "    \"cold_states\": " << s.cold_states << ",\n"
           << "    \"peak_state_bytes\": " << s.peak_state_bytes << ",\n"
           << "    \"bytes_per_state\": " << s.bytes_per_state() << ",\n"
           << "    \"per_guess_ms\": {\"mean\": " << lat.mean
           << ", \"p50\": " << lat.p50 << ", \"max\": " << lat.max << "}\n"
           << "  }";
    };
    json << "{\n"
         << "  \"schema\": \"lrb-ptas-bench-v1\",\n"
         << "  \"corpus\": {\"instances\": " << corpus.size()
         << ", \"num_jobs\": 14, \"num_procs\": 4, \"eps\": " << kBenchEps
         << ", \"seed_base\": 9000},\n"
         << "  \"reps\": " << reps << ",\n";
    emit_engine("engine", engine, engine_lat);
    json << ",\n";
    emit_engine("reference", reference, reference_lat);
    json << ",\n"
         << "  \"speedup_states_per_sec\": " << speedup << ",\n"
         << "  \"memory_ratio_bytes_per_state\": " << mem_ratio << ",\n"
         << "  \"states_identical\": true\n"
         << "}\n";
  }

  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::cerr << "bench_ptas: FAIL speedup " << speedup << " < required "
              << min_speedup << "\n";
    return 1;
  }
  if (min_mem_ratio > 0.0 && mem_ratio < min_mem_ratio) {
    std::cerr << "bench_ptas: FAIL memory ratio " << mem_ratio
              << " < required " << min_mem_ratio << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Custom flag parsing: the engine-bench flags are not part of the shared
  // --smoke-only bench contract.
  std::string json_path;
  double min_speedup = 0.0;
  double min_mem_ratio = 0.0;
  bool engine_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--smoke") {
      smoke_mode() = true;
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) {
        std::cerr << "bench_ptas: --json needs a path\n";
        return 2;
      }
      json_path = v;
      engine_mode = true;
    } else if (arg == "--min-speedup") {
      const char* v = next();
      if (v == nullptr) {
        std::cerr << "bench_ptas: --min-speedup needs a value\n";
        return 2;
      }
      min_speedup = std::atof(v);
      engine_mode = true;
    } else if (arg == "--min-mem-ratio") {
      const char* v = next();
      if (v == nullptr) {
        std::cerr << "bench_ptas: --min-mem-ratio needs a value\n";
        return 2;
      }
      min_mem_ratio = std::atof(v);
      engine_mode = true;
    } else {
      std::cerr << "bench_ptas: unknown argument '" << arg
                << "' (accepts --smoke, --json PATH, --min-speedup X, "
                   "--min-mem-ratio Y)\n";
      return 2;
    }
  }
  if (engine_mode) {
    return run_engine_bench(json_path, min_speedup, min_mem_ratio);
  }

  std::cout << "E6 / §4: PTAS quality-vs-eps sweep (12 seeds per row)\n\n";
  GeneratorOptions gen;
  gen.num_jobs = 9;
  gen.num_procs = 3;
  gen.max_size = 19;
  gen.placement = PlacementPolicy::kHotspot;
  gen.cost_model = CostModel::kUniform;
  gen.max_cost = 9;

  Table table({"eps", "B", "mean ratio", "max ratio", "1+eps", "mean states",
               "mean ms", "budget viol"});
  const std::vector<double> eps_values =
      smoke() ? std::vector<double>{4.0, 1.0}
              : std::vector<double>{4.0, 2.0, 1.0, 0.5, 0.25};
  for (double eps : eps_values) {
    for (Cost budget : {Cost{5}, Cost{15}}) {
      std::vector<double> ratios, states, times;
      int violations = 0;
      for (std::uint64_t seed = 0; seed < smoke_cap<std::uint64_t>(12, 2);
           ++seed) {
        const auto inst = random_instance(gen, seed);
        ExactOptions exact_opt;
        exact_opt.budget = budget;
        const auto exact = exact_rebalance(inst, exact_opt);

        PtasOptions opt;
        opt.budget = budget;
        opt.eps = eps;
        Timer timer;
        const auto r = ptas_rebalance(inst, opt);
        times.push_back(timer.millis());
        if (!r.success) continue;
        if (r.result.cost > budget) ++violations;
        ratios.push_back(ratio(r.result.makespan, exact.best.makespan));
        states.push_back(static_cast<double>(r.states));
      }
      const auto ratio_summary = summarize(ratios);
      const auto state_summary = summarize(states);
      const auto time_summary = summarize(times);
      table.row()
          .add(eps, 3)
          .add(budget)
          .add(ratio_summary.mean, 4)
          .add(ratio_summary.max, 4)
          .add(1.0 + eps, 3)
          .add(state_summary.mean, 4)
          .add(time_summary.mean, 4)
          .add(static_cast<std::int64_t>(violations));
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: max ratio <= 1 + eps (usually far below); "
               "states and time blow up as eps -> 0; zero budget "
               "violations.\n";
  return 0;
}
