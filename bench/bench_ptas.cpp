// Experiment E6 (§4): the PTAS tracks (1 + eps) * OPT with cost <= B, and
// its running time / DP state count grows steeply as eps shrinks - the
// trade-off that makes the 1.5-approximation "more likely to be useful in
// practice" (paper, §1).

#include <iostream>

#include "algo/ptas.h"
#include "bench_common.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace lrb;
  using namespace lrb::bench;
  if (!parse_bench_flags(argc, argv)) return 2;

  std::cout << "E6 / §4: PTAS quality-vs-eps sweep (12 seeds per row)\n\n";
  GeneratorOptions gen;
  gen.num_jobs = 9;
  gen.num_procs = 3;
  gen.max_size = 19;
  gen.placement = PlacementPolicy::kHotspot;
  gen.cost_model = CostModel::kUniform;
  gen.max_cost = 9;

  Table table({"eps", "B", "mean ratio", "max ratio", "1+eps", "mean states",
               "mean ms", "budget viol"});
  const std::vector<double> eps_values =
      smoke() ? std::vector<double>{4.0, 1.0}
              : std::vector<double>{4.0, 2.0, 1.0, 0.5, 0.25};
  for (double eps : eps_values) {
    for (Cost budget : {Cost{5}, Cost{15}}) {
      std::vector<double> ratios, states, times;
      int violations = 0;
      for (std::uint64_t seed = 0; seed < smoke_cap<std::uint64_t>(12, 2);
           ++seed) {
        const auto inst = random_instance(gen, seed);
        ExactOptions exact_opt;
        exact_opt.budget = budget;
        const auto exact = exact_rebalance(inst, exact_opt);

        PtasOptions opt;
        opt.budget = budget;
        opt.eps = eps;
        Timer timer;
        const auto r = ptas_rebalance(inst, opt);
        times.push_back(timer.millis());
        if (!r.success) continue;
        if (r.result.cost > budget) ++violations;
        ratios.push_back(ratio(r.result.makespan, exact.best.makespan));
        states.push_back(static_cast<double>(r.states));
      }
      const auto ratio_summary = summarize(ratios);
      const auto state_summary = summarize(states);
      const auto time_summary = summarize(times);
      table.row()
          .add(eps, 3)
          .add(budget)
          .add(ratio_summary.mean, 4)
          .add(ratio_summary.max, 4)
          .add(1.0 + eps, 3)
          .add(state_summary.mean, 4)
          .add(time_summary.mean, 4)
          .add(static_cast<std::int64_t>(violations));
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: max ratio <= 1 + eps (usually far below); "
               "states and time blow up as eps -> 0; zero budget "
               "violations.\n";
  return 0;
}
