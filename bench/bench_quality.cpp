// Experiment E12: GREEDY vs M-PARTITION head to head at scale. Exact optima
// are out of reach here, so quality is reported against the certified lower
// bound max(ceil-average, max job, Lemma-1 k-removal) - an upper bound on
// the true ratio. Sweeps workload family, processor count and move budget.

#include <iostream>

#include "algo/greedy.h"
#include "algo/m_partition.h"
#include "algo/rebalancer.h"
#include "bench_common.h"
#include "core/lower_bounds.h"

int main(int argc, char** argv) {
  using namespace lrb;
  using namespace lrb::bench;
  if (!parse_bench_flags(argc, argv)) return 2;

  std::cout << "E12: quality at scale, ratio vs certified lower bound "
               "(n = 3000, 10 seeds per row)\n\n";
  Table table({"family", "m", "k", "initial", "greedy", "m-partition",
               "best-of", "moves(mp)"});
  for (const auto& family : large_families(smoke_cap<std::size_t>(3000, 300), 1)) {
    for (ProcId m : {ProcId{8}, ProcId{32}}) {
      for (std::int64_t k : {10, 40, 160}) {
        auto options = family.options;
        options.num_procs = m;
        std::vector<double> initial_r, greedy_r, mp_r, best_r;
        std::vector<double> mp_moves;
        for (std::uint64_t seed = 0; seed < smoke_cap<std::uint64_t>(10, 1);
             ++seed) {
          const auto inst = random_instance(options, seed);
          const Size lb = combined_lower_bound(inst, k);
          initial_r.push_back(ratio(inst.initial_makespan(), lb));
          greedy_r.push_back(ratio(greedy_rebalance(inst, k).makespan, lb));
          const auto mp = m_partition_rebalance(inst, k);
          mp_r.push_back(ratio(mp.makespan, lb));
          mp_moves.push_back(static_cast<double>(mp.moves));
          best_r.push_back(ratio(best_of_rebalance(inst, k).makespan, lb));
        }
        table.row()
            .add(family.name)
            .add(static_cast<std::int64_t>(m))
            .add(k)
            .add(summarize(initial_r).mean, 4)
            .add(summarize(greedy_r).mean, 4)
            .add(summarize(mp_r).mean, 4)
            .add(summarize(best_r).mean, 4)
            .add(summarize(mp_moves).mean, 4);
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: ratios fall toward 1 as k grows; "
               "M-PARTITION stops as soon as its 1.5-guarantee is met (few "
               "moves), GREEDY spends the whole budget chasing the minimum - "
               "so best-of combines cheap guarantees with greedy polish.\n";
  return 0;
}
