// Experiment E3 (Lemmas 3-4): at the true optimum threshold, PARTITION never
// removes more jobs than the cheapest optimal schedule moves.
//
// For each random instance we compute the exact optimum OPT(k), the minimum
// number of moves of ANY schedule achieving it, and PARTITION's removal
// count at threshold OPT. The lemma predicts removals <= min-moves in every
// single case.

#include <iostream>

#include "algo/move_min.h"
#include "algo/partition.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace lrb;
  using namespace lrb::bench;
  if (!parse_bench_flags(argc, argv)) return 2;

  std::cout << "E3 / Lemmas 3-4: PARTITION move-optimality at T = OPT\n\n";
  Table table({"family", "k", "cases", "removals<=minmoves", "mean slack",
               "max saving"});
  for (const auto& family : small_families()) {
    for (std::int64_t k : {1, 2, 4, 8}) {
      int cases = 0, held = 0;
      std::vector<double> slack;
      std::int64_t max_saving = 0;
      for (std::uint64_t seed = 0; seed < smoke_cap<std::uint64_t>(40, 2);
           ++seed) {
        const auto inst = random_instance(family.options, seed);
        const Size opt = exact_opt_moves(inst, k);
        const auto min_moves = minimize_moves_exact(inst, opt);
        if (!min_moves.feasible || !min_moves.proven_optimal) continue;
        const auto outcome = partition_rebalance_at(inst, opt);
        if (!outcome.feasible) continue;
        ++cases;
        if (outcome.removals <= min_moves.best.moves) ++held;
        slack.push_back(
            static_cast<double>(min_moves.best.moves - outcome.removals));
        max_saving =
            std::max(max_saving, min_moves.best.moves - outcome.removals);
      }
      const auto s = summarize(slack);
      table.row()
          .add(family.name)
          .add(k)
          .add(static_cast<std::int64_t>(cases))
          .add(std::to_string(held) + "/" + std::to_string(cases))
          .add(s.mean, 3)
          .add(max_saving);
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: the lemma column is always cases/cases; "
               "slack >= 0 (PARTITION sometimes moves strictly less than an "
               "optimal schedule would, because its target configuration is "
               "only half-optimal).\n";
  return 0;
}
