// Experiment E10: head-to-head with the prior art. The paper's claim: the
// generic Shmoys-Tardos GAP rounding [14] gives 2x; this paper's GREEDY
// matches that 2x with a trivial algorithm, and PARTITION improves it to
// 1.5x. Measured against exact optima on unit-cost instances (budget = k).

#include <iostream>

#include "algo/greedy.h"
#include "algo/m_partition.h"
#include "bench_common.h"
#include "lp/gap.h"

int main(int argc, char** argv) {
  using namespace lrb;
  using namespace lrb::bench;
  if (!parse_bench_flags(argc, argv)) return 2;

  std::cout << "E10: Shmoys-Tardos [14] vs GREEDY vs M-PARTITION "
               "(unit costs, 30 seeds per row)\n\n";
  Table table({"family", "k", "ST mean", "ST max", "greedy mean", "greedy max",
               "mp mean", "mp max"});
  for (const auto& family : small_families()) {
    for (std::int64_t k : {1, 3, 6}) {
      std::vector<double> st_ratios, greedy_ratios, mp_ratios;
      for (std::uint64_t seed = 0; seed < smoke_cap<std::uint64_t>(30, 2);
           ++seed) {
        const auto inst = random_instance(family.options, seed);
        const Size opt = exact_opt_moves(inst, k);
        const auto st = st_rebalance(inst, k);
        st_ratios.push_back(ratio(st.makespan, opt));
        greedy_ratios.push_back(ratio(greedy_rebalance(inst, k).makespan, opt));
        mp_ratios.push_back(ratio(m_partition_rebalance(inst, k).makespan, opt));
      }
      const auto st_summary = summarize(st_ratios);
      const auto greedy_summary = summarize(greedy_ratios);
      const auto mp_summary = summarize(mp_ratios);
      table.row()
          .add(family.name)
          .add(k)
          .add(st_summary.mean, 4)
          .add(st_summary.max, 4)
          .add(greedy_summary.mean, 4)
          .add(greedy_summary.max, 4)
          .add(mp_summary.mean, 4)
          .add(mp_summary.max, 4);
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: every max column respects its theoretical "
               "bound (ST and greedy <= 2, m-partition <= 1.5); the "
               "specialized algorithms dominate the generic LP baseline "
               "while avoiding an LP solve entirely.\n";
  return 0;
}
