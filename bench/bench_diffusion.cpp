// Experiment E14: the paper vs its predecessors. The introduction cites
// diffusive balancing (Hu et al. [7]) and local balancing with few moves
// (Ghosh et al. [4]); both constrain migrations to a proximity graph and,
// crucially, do not bound the NUMBER of moves the way the k-move
// formulation does. This bench measures (a) how topology throttles
// continuous diffusion, and (b) what job-granular local exchange costs in
// moves to reach the balance the global algorithms get within a budget.

#include <iostream>

#include "algo/greedy.h"
#include "algo/m_partition.h"
#include "bench_common.h"
#include "core/lower_bounds.h"
#include "diffusion/diffusion.h"
#include "diffusion/graph.h"
#include "diffusion/local_exchange.h"

int main(int argc, char** argv) {
  using namespace lrb;
  using namespace lrb::bench;
  using namespace lrb::diffusion;
  if (!parse_bench_flags(argc, argv)) return 2;

  std::cout << "E14a: continuous diffusion convergence by topology "
               "(single hotspot, tolerance 1e-3 of average)\n\n";
  {
    Table table({"topology", "m", "iterations", "residual"});
    struct Topo {
      const char* name;
      ProcessorGraph graph;
    };
    const Topo topologies[] = {
        {"ring", ring_graph(16)},
        {"torus 4x4", torus_graph(4, 4)},
        {"hypercube d=4", hypercube_graph(4)},
        {"complete", complete_graph(16)},
    };
    for (const auto& topo : topologies) {
      std::vector<Size> loads(16, 0);
      loads[0] = 1600;
      DiffusionOptions opt;
      opt.tolerance = 1e-3;
      const auto r = diffuse(topo.graph, loads, opt);
      table.row()
          .add(topo.name)
          .add(static_cast<std::int64_t>(16))
          .add(static_cast<std::int64_t>(r.iterations))
          .add(r.residual, 3);
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "E14b: job-granular local exchange vs the paper's global "
               "k-move algorithms (hotspot workload, n = 400, m = 16, "
               "ratios vs certified LB, 8 seeds)\n\n";
  {
    GeneratorOptions gen;
    gen.num_jobs = smoke_cap<std::size_t>(400, 100);
    gen.num_procs = 16;
    gen.max_size = 300;
    gen.placement = PlacementPolicy::kHotspot;

    Table table({"balancer", "mean ratio", "mean moves", "mean rounds"});
    struct Row {
      const char* name;
      ProcessorGraph graph;
    };
    const Row rows[] = {
        {"local exchange (ring)", ring_graph(16)},
        {"local exchange (torus 4x4)", torus_graph(4, 4)},
        {"local exchange (hypercube)", hypercube_graph(4)},
        {"local exchange (complete)", complete_graph(16)},
    };
    for (const auto& row : rows) {
      std::vector<double> ratios, moves, rounds;
      for (std::uint64_t seed = 0; seed < smoke_cap<std::uint64_t>(8, 2);
           ++seed) {
        const auto inst = random_instance(gen, seed);
        const auto r = local_exchange_rebalance(inst, row.graph);
        const Size lb =
            std::max(average_load_bound(inst), max_job_bound(inst));
        ratios.push_back(ratio(r.result.makespan, lb));
        moves.push_back(static_cast<double>(r.result.moves));
        rounds.push_back(static_cast<double>(r.rounds));
      }
      table.row()
          .add(row.name)
          .add(summarize(ratios).mean, 4)
          .add(summarize(moves).mean, 4)
          .add(summarize(rounds).mean, 4);
    }
    // The paper's global algorithms with a budget equal to what local
    // exchange spent on the complete graph (~the interesting comparison).
    for (std::int64_t k : {40, 160}) {
      std::vector<double> greedy_r, mp_r, greedy_m, mp_m;
      for (std::uint64_t seed = 0; seed < smoke_cap<std::uint64_t>(8, 2);
           ++seed) {
        const auto inst = random_instance(gen, seed);
        const Size lb = combined_lower_bound(inst, k);
        const auto g = greedy_rebalance(inst, k);
        greedy_r.push_back(ratio(g.makespan, lb));
        greedy_m.push_back(static_cast<double>(g.moves));
        const auto mp = m_partition_rebalance(inst, k);
        mp_r.push_back(ratio(mp.makespan, lb));
        mp_m.push_back(static_cast<double>(mp.moves));
      }
      table.row()
          .add("GREEDY k=" + std::to_string(k))
          .add(summarize(greedy_r).mean, 4)
          .add(summarize(greedy_m).mean, 4)
          .add("-");
      table.row()
          .add("M-PARTITION k=" + std::to_string(k))
          .add(summarize(mp_r).mean, 4)
          .add(summarize(mp_m).mean, 4)
          .add("-");
    }
    table.print(std::cout);
  }
  std::cout << "\nExpected shape: diffusion iterations collapse from ring "
               "(hundreds) to complete graph (one); local exchange reaches "
               "good balance only by spending many more moves than the "
               "budgeted global algorithms - the gap the paper's k-move "
               "formulation was designed to close.\n";
  return 0;
}
