// Experiment E15: empirical color on the paper's open question (§5):
// "whether the relocation cost is hard to approximate even when the target
// load is strictly above the minimum load achievable."
//
// For random instances we compute the true minimum achievable makespan
// L_min (unbounded moves), then sweep the move-minimization target
// T = ceil((1+slack) * L_min). Measured per slack level:
//   - how often the greedy move minimizer (provably optimal when it
//     succeeds) solves the instance outright,
//   - how often its move count matches the exact optimum,
//   - how much work the exact branch-and-bound needs (nodes).
// The observed shape - failures and search effort concentrate at slack 0
// and vanish with a few percent of headroom - is consistent with the
// conjecture that the hardness lives at tight targets.

#include <cmath>
#include <iostream>

#include "algo/exact.h"
#include "algo/move_min.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace lrb;
  using namespace lrb::bench;
  if (!parse_bench_flags(argc, argv)) return 2;

  std::cout << "E15 / open question: move minimization vs target slack "
               "(n = 12, m = 4, 40 seeds per row)\n\n";
  GeneratorOptions gen;
  gen.num_jobs = 12;
  gen.num_procs = 4;
  gen.max_size = 40;
  gen.placement = PlacementPolicy::kHotspot;

  Table table({"slack", "feasible", "greedy solves", "greedy optimal",
               "mean exact nodes", "mean moves"});
  for (double slack : {0.0, 0.02, 0.05, 0.10, 0.25, 0.50}) {
    int feasible = 0, greedy_ok = 0, greedy_optimal = 0;
    std::vector<double> nodes, moves;
    for (std::uint64_t seed = 0; seed < smoke_cap<std::uint64_t>(40, 2);
         ++seed) {
      const auto inst = random_instance(gen, seed);
      ExactOptions unbounded;
      const auto best = exact_rebalance(inst, unbounded);
      const auto l_min = best.best.makespan;
      const auto target = static_cast<Size>(
          std::ceil((1.0 + slack) * static_cast<double>(l_min)));

      const auto exact = minimize_moves_exact(inst, target);
      if (!exact.feasible) continue;  // cannot happen for target >= L_min
      ++feasible;
      nodes.push_back(static_cast<double>(exact.nodes));
      moves.push_back(static_cast<double>(exact.best.moves));
      const auto greedy = move_min_greedy(inst, target);
      if (greedy.has_value()) {
        ++greedy_ok;
        if (greedy->moves == exact.best.moves) ++greedy_optimal;
      }
    }
    table.row()
        .add(slack, 3)
        .add(static_cast<std::int64_t>(feasible))
        .add(std::to_string(greedy_ok) + "/" + std::to_string(feasible))
        .add(std::to_string(greedy_optimal) + "/" + std::to_string(feasible))
        .add(summarize(nodes).mean, 5)
        .add(summarize(moves).mean, 4);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: at slack 0 the greedy minimizer sometimes "
               "gets stuck and the exact search works hardest; a few percent "
               "of headroom makes greedy (which is optimal whenever it "
               "completes) solve essentially everything - the hardness "
               "concentrates at tight targets.\n";
  return 0;
}
