// Shared helpers for the experiment harness binaries. Each bench prints the
// tables recorded in EXPERIMENTS.md; keep them deterministic (fixed seeds)
// so reruns regenerate the same rows.

#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "algo/exact.h"
#include "core/generators.h"
#include "core/instance.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace lrb::bench {

/// --smoke mode: every bench binary accepts exactly one flag, --smoke,
/// which shrinks the run to ~1 repetition at tiny sizes. ctest runs every
/// bench that way (label "bench-smoke") so the harness binaries cannot rot
/// unnoticed between full experiment reruns.
inline bool& smoke_mode() {
  static bool mode = false;
  return mode;
}

[[nodiscard]] inline bool smoke() { return smoke_mode(); }

/// `full` normally, `tiny` under --smoke.
template <typename T>
[[nodiscard]] T smoke_cap(T full, T tiny) {
  return smoke() ? tiny : full;
}

/// Parses a bench binary's argv. Only --smoke is meaningful; anything else
/// prints a diagnostic and returns false (the binary should exit nonzero),
/// so typos in CI invocations fail loudly.
inline bool parse_bench_flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke_mode() = true;
      continue;
    }
    std::cerr << argv[0] << ": unknown argument '" << arg
              << "' (benches accept only --smoke)\n";
    return false;
  }
  return true;
}

/// Named workload families reused across experiments.
struct Family {
  std::string name;
  GeneratorOptions options;
};

/// Small-instance families (exact solver tractable).
inline std::vector<Family> small_families() {
  std::vector<Family> families;
  GeneratorOptions base;
  base.num_jobs = 10;
  base.num_procs = 3;
  base.min_size = 1;
  base.max_size = 30;

  Family uniform{"uniform", base};
  families.push_back(uniform);

  Family hotspot{"hotspot", base};
  hotspot.options.placement = PlacementPolicy::kHotspot;
  families.push_back(hotspot);

  Family pile{"single-proc", base};
  pile.options.placement = PlacementPolicy::kSingleProc;
  families.push_back(pile);

  Family zipf{"zipf-sizes", base};
  zipf.options.size_dist = SizeDistribution::kZipf;
  families.push_back(zipf);

  Family bimodal{"bimodal", base};
  bimodal.options.size_dist = SizeDistribution::kBimodal;
  families.push_back(bimodal);

  return families;
}

/// Large-instance families (compare against certified lower bounds).
inline std::vector<Family> large_families(std::size_t n, ProcId m) {
  auto families = small_families();
  for (auto& family : families) {
    family.options.num_jobs = n;
    family.options.num_procs = m;
    family.options.max_size = 1000;
  }
  return families;
}

/// Exact optimum with a move budget; asserts the search completed.
inline Size exact_opt_moves(const Instance& instance, std::int64_t k) {
  ExactOptions options;
  options.max_moves = k;
  const auto result = exact_rebalance(instance, options);
  if (!result.proven_optimal) {
    std::cerr << "warning: exact solver hit the node limit\n";
  }
  return result.best.makespan;
}

inline double ratio(Size achieved, Size optimum) {
  if (optimum == 0) return achieved == 0 ? 1.0 : 1e9;
  return static_cast<double>(achieved) / static_cast<double>(optimum);
}

/// Prints the table to stdout and, when the LRB_CSV_DIR environment variable
/// is set, also writes <LRB_CSV_DIR>/<name>.csv - the "figure data" export
/// used to regenerate plots outside the harness.
inline void emit_table(const Table& table, const std::string& name) {
  table.print(std::cout);
  if (const char* dir = std::getenv("LRB_CSV_DIR")) {
    std::ofstream file(std::string(dir) + "/" + name + ".csv");
    if (file) table.print_csv(file);
  }
}

}  // namespace lrb::bench
