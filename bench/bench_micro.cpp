// Experiment E13: google-benchmark microbenchmarks of the core data paths -
// load accounting, lower bounds, threshold generation, the two rebalancers,
// and the knapsack kernels that power the cost variants.

#include <benchmark/benchmark.h>

#include <string_view>
#include <vector>

#include "algo/greedy.h"
#include "algo/m_partition.h"
#include "algo/thresholds.h"
#include "core/assignment.h"
#include "core/generators.h"
#include "core/lower_bounds.h"
#include "algo/two_proc_exact.h"
#include "core/plan.h"
#include "diffusion/graph.h"
#include "diffusion/local_exchange.h"
#include "knapsack/knapsack.h"
#include "online/scheduler.h"
#include "online/trace.h"

namespace {

using namespace lrb;

Instance bench_instance(std::int64_t n) {
  GeneratorOptions gen;
  gen.num_jobs = static_cast<std::size_t>(n);
  gen.num_procs = 32;
  gen.max_size = 5000;
  gen.placement = PlacementPolicy::kHotspot;
  return random_instance(gen, 99);
}

void BM_Makespan(benchmark::State& state) {
  const auto inst = bench_instance(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(makespan(inst, inst.initial));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Makespan)->Arg(1 << 10)->Arg(1 << 14);

void BM_KRemovalBound(benchmark::State& state) {
  const auto inst = bench_instance(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(k_removal_bound(inst, state.range(0) / 50));
  }
}
BENCHMARK(BM_KRemovalBound)->Arg(1 << 10)->Arg(1 << 14);

void BM_CandidateThresholds(benchmark::State& state) {
  const auto inst = bench_instance(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(candidate_thresholds(inst));
  }
}
BENCHMARK(BM_CandidateThresholds)->Arg(1 << 10)->Arg(1 << 14);

void BM_Greedy(benchmark::State& state) {
  const auto inst = bench_instance(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_rebalance(inst, state.range(0) / 50));
  }
}
BENCHMARK(BM_Greedy)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_MPartition(benchmark::State& state) {
  const auto inst = bench_instance(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(m_partition_rebalance(inst, state.range(0) / 50));
  }
}
BENCHMARK(BM_MPartition)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_KnapsackExact(benchmark::State& state) {
  Rng rng(5);
  std::vector<KnapsackItem> items(static_cast<std::size_t>(state.range(0)));
  for (auto& item : items) {
    item.size = rng.uniform_int(1, 100);
    item.value = rng.uniform_int(1, 50);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(knapsack_exact(items, 500));
  }
}
BENCHMARK(BM_KnapsackExact)->Arg(32)->Arg(256);

void BM_KnapsackSizeRelaxed(benchmark::State& state) {
  Rng rng(5);
  std::vector<KnapsackItem> items(static_cast<std::size_t>(state.range(0)));
  for (auto& item : items) {
    item.size = rng.uniform_int(1, 1'000'000);
    item.value = rng.uniform_int(1, 50);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(knapsack_size_relaxed(items, 5'000'000, 0.1));
  }
}
BENCHMARK(BM_KnapsackSizeRelaxed)->Arg(32)->Arg(256);

void BM_TwoProcExactDp(benchmark::State& state) {
  GeneratorOptions gen;
  gen.num_jobs = static_cast<std::size_t>(state.range(0));
  gen.num_procs = 2;
  gen.max_size = 500;
  gen.placement = PlacementPolicy::kHotspot;
  const auto inst = random_instance(gen, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(two_proc_exact_rebalance(inst, state.range(0) / 4));
  }
}
BENCHMARK(BM_TwoProcExactDp)->Arg(32)->Arg(128);

void BM_MakePlanMonotone(benchmark::State& state) {
  GeneratorOptions gen;
  gen.num_jobs = static_cast<std::size_t>(state.range(0));
  gen.num_procs = 16;
  gen.placement = PlacementPolicy::kHotspot;
  const auto inst = random_instance(gen, 5);
  const auto result = greedy_rebalance(inst, state.range(0) / 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        make_plan(inst, result.assignment, PlanOrder::kMonotone));
  }
}
BENCHMARK(BM_MakePlanMonotone)->Arg(256)->Arg(1024);

void BM_LocalExchangeRing(benchmark::State& state) {
  GeneratorOptions gen;
  gen.num_jobs = static_cast<std::size_t>(state.range(0));
  gen.num_procs = 16;
  gen.placement = PlacementPolicy::kHotspot;
  const auto inst = random_instance(gen, 7);
  const auto graph = diffusion::ring_graph(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(diffusion::local_exchange_rebalance(inst, graph));
  }
}
BENCHMARK(BM_LocalExchangeRing)->Arg(256)->Arg(1024);

void BM_OnlineArriveDepart(benchmark::State& state) {
  online::TraceOptions opt;
  opt.num_events = static_cast<std::size_t>(state.range(0));
  opt.departure_fraction = 0.4;
  const auto trace = online::random_trace(opt, 9);
  for (auto _ : state) {
    online::OnlineScheduler scheduler(16);
    std::vector<std::size_t> handles;
    for (const auto& event : trace) {
      if (event.kind == online::EventKind::kArrive) {
        handles.push_back(scheduler.on_arrive(event.size, event.move_cost));
      } else {
        scheduler.on_depart(handles[event.arrival_index]);
      }
    }
    benchmark::DoNotOptimize(scheduler.makespan());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OnlineArriveDepart)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so the binary honors the harness-wide --smoke
// contract: strip the flag and pin min_time to ~0 so every benchmark runs a
// single short iteration batch instead of the default wall-clock budget.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  static char min_time[] = "--benchmark_min_time=0.001";
  if (smoke) args.push_back(min_time);
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
