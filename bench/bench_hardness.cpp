// Experiments E7-E9 (§5): the hardness reductions exercised empirically.
// Yes-instances of the source problem hit the small objective, no-instances
// provably cannot - the exact gaps behind Theorem 5 (any-factor hardness of
// move minimization), Theorem 6 / Corollary 1 (no rho < 1.5), and Theorem 7
// (no ratio at all for conflict scheduling).

#include <iostream>

#include "algo/move_min.h"
#include "bench_common.h"
#include "ext/conflict.h"
#include "ext/constrained.h"
#include "ext/gadgets.h"
#include "ext/threedm.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace lrb;
  using namespace lrb::bench;
  if (!parse_bench_flags(argc, argv)) return 2;

  std::cout << "E7 / Theorem 5: move minimization encodes PARTITION\n\n";
  {
    Table table({"numbers", "half", "subset-sum", "min moves"});
    Rng rng(12);
    for (int trial = 0; trial < smoke_cap(8, 2); ++trial) {
      std::vector<Size> numbers(6);
      Size total = 0;
      for (auto& v : numbers) {
        v = rng.uniform_int(1, 9);
        total += v;
      }
      if (total % 2 != 0) numbers[0] += 1, total += 1;
      const auto gadget = move_min_gadget(numbers);
      const auto exact = minimize_moves_exact(gadget.instance, gadget.target_load);
      std::string joined;
      for (Size v : numbers) joined += std::to_string(v) + " ";
      table.row()
          .add(joined)
          .add(gadget.target_load)
          .add(exact.feasible)
          .add(exact.feasible ? std::to_string(exact.best.moves)
                              : std::string("infinity"));
    }
    table.print(std::cout);
    std::cout << "  (min moves is finite exactly when the numbers split "
                 "evenly - an approximation of ANY factor would decide "
                 "PARTITION)\n\n";
  }

  std::cout << "E8a / Theorem 6: {p,q}-cost scheduling gap (p=1, q=100)\n\n";
  {
    Table table({"3DM source", "n", "machines", "matchable", "min makespan",
                 "gap vs 2"});
    for (std::uint64_t seed = 0; seed < smoke_cap<std::uint64_t>(4, 1);
         ++seed) {
      for (int matchable = 1; matchable >= 0; --matchable) {
        const auto source = matchable != 0 ? random_matchable_3dm(3, 2, seed)
                                           : unmatchable_3dm(3, 6, seed);
        const auto gadget = two_cost_gadget(source, 1, 100);
        const auto exact = gap_exact_min_makespan(gadget.gap, gadget.budget);
        table.row()
            .add(matchable != 0 ? "matchable" : "unmatchable")
            .add(source.n)
            .add(static_cast<std::uint64_t>(gadget.gap.num_machines()))
            .add(solve_3dm(source).has_value())
            .add(exact.feasible ? std::to_string(exact.makespan)
                                : std::string("infeasible"))
            .add(exact.feasible ? format_double(ratio(exact.makespan, 2), 3)
                                : std::string("-"));
      }
    }
    table.print(std::cout);
    std::cout << "  (yes-instances reach exactly 2; no-instances are >= 3 or "
                 "infeasible: the 3/2 gap)\n\n";
  }

  std::cout << "E8b / Corollary 1: constrained load rebalancing gap\n\n";
  {
    Table table({"3DM source", "matchable", "exact makespan", "greedy makespan"});
    for (std::uint64_t seed = 0; seed < smoke_cap<std::uint64_t>(4, 1);
         ++seed) {
      for (int matchable = 1; matchable >= 0; --matchable) {
        const auto source = matchable != 0 ? random_matchable_3dm(3, 2, seed)
                                           : unmatchable_3dm(3, 6, seed);
        const auto gadget = constrained_gadget(source);
        const auto n_jobs =
            static_cast<std::int64_t>(gadget.instance.base.num_jobs());
        const auto exact = constrained_exact(gadget.instance, n_jobs);
        const auto greedy = constrained_greedy(gadget.instance, n_jobs);
        table.row()
            .add(matchable != 0 ? "matchable" : "unmatchable")
            .add(solve_3dm(source).has_value())
            .add(exact.best.makespan)
            .add(greedy.makespan);
      }
    }
    table.print(std::cout);
    std::cout << "  (same 2-vs->=3 gap; the restricted GREEDY heuristic "
                 "generally cannot tell the difference)\n\n";
  }

  std::cout << "E9 / Theorem 7: conflict scheduling feasibility == 3DM\n\n";
  {
    Table table({"3DM source", "matchable", "gadget feasible", "first-fit",
                 "exact nodes"});
    for (std::uint64_t seed = 0; seed < smoke_cap<std::uint64_t>(4, 1);
         ++seed) {
      for (int matchable = 1; matchable >= 0; --matchable) {
        const auto source = matchable != 0 ? random_matchable_3dm(3, 2, seed)
                                           : unmatchable_3dm(3, 6, seed);
        const auto gadget = conflict_gadget(source);
        const auto exact = conflict_exact(gadget.instance);
        const auto ff = conflict_first_fit(gadget.instance);
        table.row()
            .add(matchable != 0 ? "matchable" : "unmatchable")
            .add(solve_3dm(source).has_value())
            .add(exact.feasible)
            .add(ff.has_value() ? "feasible" : "stuck")
            .add(exact.nodes);
      }
    }
    table.print(std::cout);
    std::cout << "  (feasibility mirrors 3DM exactly, so NO approximation "
                 "ratio is achievable in polynomial time)\n";
  }
  return 0;
}
