// Canonicalizing solution cache bench (docs/caching.md): repeated-
// instance serving workloads — U unique instances, each requested R times
// in shuffled order, solved in tick-sized batches — through two otherwise
// identical BatchSolvers, one with the cache off and one with it on.
//
// Two profiles:
//
//   * "ptas": U unique PTAS requests (the multi-millisecond DP solver the
//     cache exists for). This is the gated profile: --min-speedup applies
//     to its warm speedup.
//   * "best-of": the mixed serving corpus under the default best-of
//     roster, whose solves are only microseconds. Reported for honesty —
//     canonicalize+probe+map overhead is the same order as the solve
//     itself there, so the cache roughly breaks even; it is not gated.
//
// Cached numbers are the warm steady state (min over reps after a cold
// first pass, reported separately); the interleaved min-over-reps
// protocol mirrors bench_ptas so scheduler noise on a shared runner
// degrades both sides of the ratio together. Every unique instance's
// cached reply is byte-compared against engine::cached_serial_reference
// before any number is reported: a fast wrong cache must fail the bench,
// not win it.
//
//   bench_cache                                  # both profiles to stdout
//   bench_cache --smoke                          # tiny run (ctest bench-smoke)
//   bench_cache --json bench/BENCH_cache.json --min-speedup 5   # CI gate

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/generators.h"
#include "engine/batch_solver.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/timer.h"
#include "util/version.h"

namespace {

using namespace lrb;

constexpr std::size_t kTick = 64;  // requests per solve_items() batch
constexpr double kPtasEps = 0.4;

struct Workload {
  std::string name;
  solver::SolverSpec spec;
  std::size_t uniques = 0;
  std::size_t repeats = 0;
  std::vector<Instance> instances;  // one per unique
  std::vector<std::int64_t> ks;     // one move budget per unique
  std::vector<std::size_t> order;   // uniques * repeats, shuffled
};

void fill_order(Workload& w) {
  w.order.reserve(w.uniques * w.repeats);
  for (std::size_t r = 0; r < w.repeats; ++r) {
    for (std::size_t i = 0; i < w.uniques; ++i) w.order.push_back(i);
  }
  Rng rng(42);
  shuffle(std::span<std::size_t>(w.order), rng);
}

/// The gated profile: small instances, expensive solver (the same corpus
/// shape bench_ptas measures the DP engine on).
Workload ptas_workload(std::size_t uniques, std::size_t repeats) {
  Workload w;
  w.name = "ptas";
  w.spec = solver::SolverSpec(solver::BackendId::kPtas, {.eps = kPtasEps});
  w.uniques = uniques;
  w.repeats = repeats;
  for (std::uint64_t i = 0; i < uniques; ++i) {
    GeneratorOptions gen;
    gen.num_jobs = 14;
    gen.num_procs = 4;
    gen.min_size = 1;
    gen.max_size = 100;
    gen.size_dist = static_cast<SizeDistribution>(i % 5);
    gen.placement = static_cast<PlacementPolicy>((i / 5) % 5);
    gen.max_cost = 10;
    w.instances.push_back(random_instance(gen, 9100 + i));
    w.ks.push_back(static_cast<std::int64_t>(gen.num_jobs) / 4);
  }
  fill_order(w);
  return w;
}

/// The informational profile: the shared serving corpus under best-of.
Workload best_of_workload(std::size_t uniques, std::size_t repeats) {
  Workload w;
  w.name = "best-of";
  w.spec = solver::BackendId::kBestOf;
  w.uniques = uniques;
  w.repeats = repeats;
  for (std::size_t i = 0; i < uniques; ++i) {
    w.instances.push_back(mixed_corpus_instance(i, 0xcac4e));
    w.ks.push_back(std::max<std::int64_t>(
        1, static_cast<std::int64_t>(w.instances.back().num_jobs()) / 4));
  }
  fill_order(w);
  return w;
}

engine::BatchSolver::TickItem make_item(const Workload& w, std::size_t idx) {
  engine::BatchSolver::TickItem item;
  item.instance = &w.instances[idx];
  item.k = w.ks[idx];
  item.spec = w.spec;
  return item;
}

/// One full pass over the workload in tick-sized batches; returns seconds.
double run_pass(engine::BatchSolver& solver, const Workload& w) {
  std::vector<engine::BatchSolver::TickItem> items;
  items.reserve(kTick);
  Timer timer;
  for (std::size_t begin = 0; begin < w.order.size(); begin += kTick) {
    const std::size_t end = std::min(begin + kTick, w.order.size());
    items.clear();
    for (std::size_t pos = begin; pos < end; ++pos) {
      items.push_back(make_item(w, w.order[pos]));
    }
    const auto results = solver.solve_items(items);
    if (results.size() != items.size()) {
      std::cerr << "bench_cache: solve_items returned " << results.size()
                << " results for " << items.size() << " items\n";
      std::exit(1);
    }
  }
  return timer.seconds();
}

/// Every unique instance through the cache-enabled solver (now warm) vs
/// the canonical-solve serial reference. Returns false on any field diff.
bool verify_byte_identity(engine::BatchSolver& cached, const Workload& w) {
  bool ok = true;
  for (std::size_t i = 0; i < w.uniques; ++i) {
    const RebalanceResult want = engine::cached_serial_reference(
        w.spec, w.instances[i], w.ks[i]);
    const engine::BatchSolver::TickItem item = make_item(w, i);
    const auto got = cached.solve_items({&item, 1});
    if (got.size() != 1 || got[0].assignment != want.assignment ||
        got[0].makespan != want.makespan || got[0].moves != want.moves ||
        got[0].cost != want.cost || got[0].threshold != want.threshold) {
      std::cerr << "bench_cache: cached " << w.name << " reply for unique "
                << i << " differs from cached_serial_reference\n";
      ok = false;
    }
  }
  return ok;
}

struct ProfileResult {
  std::string name;
  std::size_t uniques = 0;
  std::size_t repeats = 0;
  std::size_t requests = 0;
  double uncached_best = 0.0;
  double cold_seconds = 0.0;
  double cached_best = 0.0;
  double speedup_warm = 0.0;
  double speedup_cold = 0.0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  bool byte_identical = false;
};

ProfileResult run_profile(const Workload& w, int reps) {
  engine::BatchOptions uncached_options;
  uncached_options.workers = 4;
  obs::Registry uncached_registry;
  uncached_options.metrics = &uncached_registry;
  engine::BatchSolver uncached(uncached_options);

  engine::BatchOptions cached_options = uncached_options;
  cached_options.cache_bytes = std::size_t{64} << 20;
  obs::Registry cached_registry;
  cached_options.metrics = &cached_registry;
  engine::BatchSolver cached(cached_options);

  // One pass each before timing: warms the uncached solver's scratch
  // arenas and fills the cache. The cached side's first pass IS the cold
  // number — intra-tick dedup already applies there, which is part of the
  // repeated-instance serving path being measured.
  (void)run_pass(uncached, w);
  const double cold_seconds = run_pass(cached, w);

  double uncached_best = 0.0;
  double cached_best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    // Interleaved so a load spike degrades both sides of the ratio.
    const double u = run_pass(uncached, w);
    const double c = run_pass(cached, w);
    if (rep == 0 || u < uncached_best) uncached_best = u;
    if (rep == 0 || c < cached_best) cached_best = c;
  }

  ProfileResult out;
  out.name = w.name;
  out.uniques = w.uniques;
  out.repeats = w.repeats;
  out.requests = w.order.size();
  out.uncached_best = uncached_best;
  out.cold_seconds = cold_seconds;
  out.cached_best = cached_best;
  out.speedup_warm = cached_best > 0.0 ? uncached_best / cached_best : 0.0;
  out.speedup_cold = cold_seconds > 0.0 ? uncached_best / cold_seconds : 0.0;
  out.hits = cached_registry.counter("cache.hits").value();
  out.misses = cached_registry.counter("cache.misses").value();
  out.evictions = cached_registry.counter("cache.evictions").value();
  out.byte_identical = verify_byte_identity(cached, w);
  return out;
}

void print_profile(const ProfileResult& p) {
  const double requests = static_cast<double>(p.requests);
  std::cout << "profile " << p.name << " (" << p.uniques << " uniques x "
            << p.repeats << " repeats = " << p.requests << " requests, tick "
            << kTick << ")\n"
            << "  uncached:    " << p.uncached_best << " s  ("
            << requests / p.uncached_best << " req/s)\n"
            << "  cached cold: " << p.cold_seconds
            << " s  (first pass, intra-tick dedup only)\n"
            << "  cached warm: " << p.cached_best << " s  ("
            << requests / p.cached_best << " req/s)\n"
            << "  speedup: warm " << p.speedup_warm << "x, cold "
            << p.speedup_cold << "x;  cache " << p.hits << " hits / "
            << p.misses << " misses / " << p.evictions << " evictions\n"
            << "  byte-identity vs cached_serial_reference: "
            << (p.byte_identical ? "OK" : "FAIL") << "\n";
}

void emit_profile_json(std::ostream& json, const ProfileResult& p) {
  const double requests = static_cast<double>(p.requests);
  json << "  \"" << p.name << "\": {\n"
       << "    \"unique_instances\": " << p.uniques << ",\n"
       << "    \"repeats\": " << p.repeats << ",\n"
       << "    \"requests\": " << p.requests << ",\n"
       << "    \"uncached\": {\"best_seconds\": " << p.uncached_best
       << ", \"requests_per_sec\": " << requests / p.uncached_best << "},\n"
       << "    \"cached_cold\": {\"seconds\": " << p.cold_seconds << "},\n"
       << "    \"cached_warm\": {\"best_seconds\": " << p.cached_best
       << ", \"requests_per_sec\": " << requests / p.cached_best << "},\n"
       << "    \"cache\": {\"hits\": " << p.hits << ", \"misses\": "
       << p.misses << ", \"evictions\": " << p.evictions << "},\n"
       << "    \"speedup_warm\": " << p.speedup_warm << ",\n"
       << "    \"speedup_cold\": " << p.speedup_cold << ",\n"
       << "    \"byte_identical\": " << (p.byte_identical ? "true" : "false")
       << "\n  }";
}

int run_bench(const std::string& json_path, double min_speedup) {
  using namespace lrb::bench;
  const int reps = smoke_cap(3, 1);
  const ProfileResult ptas = run_profile(
      ptas_workload(smoke_cap<std::size_t>(8, 3), smoke_cap<std::size_t>(16, 4)),
      reps);
  const ProfileResult best_of = run_profile(
      best_of_workload(smoke_cap<std::size_t>(12, 4),
                       smoke_cap<std::size_t>(16, 4)),
      reps);

  std::cout << "solution-cache bench (eps=" << kPtasEps << " for ptas, "
            << reps << " reps, min of reps)\n";
  print_profile(ptas);
  print_profile(best_of);

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "bench_cache: cannot write " << json_path << "\n";
      return 1;
    }
    json << "{\n"
         << "  \"schema\": \"" << kCacheBenchSchema << "\",\n"
         << "  \"tick\": " << kTick << ",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"ptas_eps\": " << kPtasEps << ",\n"
         << "  \"gated_profile\": \"ptas\",\n";
    emit_profile_json(json, ptas);
    json << ",\n";
    emit_profile_json(json, best_of);
    json << "\n}\n";
  }

  if (!ptas.byte_identical || !best_of.byte_identical) return 1;
  if (min_speedup > 0.0 && ptas.speedup_warm < min_speedup) {
    std::cerr << "bench_cache: FAIL speedup " << ptas.speedup_warm
              << " < required " << min_speedup << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  double min_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--smoke") {
      lrb::bench::smoke_mode() = true;
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) {
        std::cerr << "bench_cache: --json needs a path\n";
        return 2;
      }
      json_path = v;
    } else if (arg == "--min-speedup") {
      const char* v = next();
      if (v == nullptr) {
        std::cerr << "bench_cache: --min-speedup needs a value\n";
        return 2;
      }
      min_speedup = std::atof(v);
    } else {
      std::cerr << "bench_cache: unknown argument '" << arg
                << "' (accepts --smoke, --json PATH, --min-speedup X)\n";
      return 2;
    }
  }
  return run_bench(json_path, min_speedup);
}
