// Experiment E11: the motivating web-farm scenario. Policies compared over
// drifting + flash-crowd workloads across seeds and move budgets: bounded-
// move rebalancing tracks the fractional optimum at a tiny fraction of full
// rebalancing's migration traffic.

#include <iostream>

#include "algo/rebalancer.h"
#include "bench_common.h"
#include "sim/policies.h"
#include "sim/simulator.h"

int main(int argc, char** argv) {
  using namespace lrb;
  using namespace lrb::bench;
  using namespace lrb::sim;
  if (!parse_bench_flags(argc, argv)) return 2;

  std::cout << "E11: web-farm simulation (300 sites, 12 servers, 300 steps, "
               "5 seeds per row)\n\n";

  SimOptions base;
  base.workload.num_sites = smoke_cap<std::size_t>(300, 60);
  base.workload.max_initial_load = 1500;
  base.workload.flash_prob = 0.003;
  base.num_servers = 12;
  base.steps = smoke_cap(300, 40);
  base.rebalance_every = 5;

  Table table({"policy", "k", "mean imb", "p90 imb", "moves/round",
               "GB moved"});
  for (const auto& policy : standard_rebalancers()) {
    for (std::int64_t k : {4, 12, 36}) {
      if (policy.name == "none" && k != 4) continue;      // k is irrelevant
      if (policy.name == "lpt-full" && k != 4) continue;  // budget ignored
      std::vector<double> imbalances, p90s, moves, bytes;
      for (std::uint64_t seed = 1; seed <= smoke_cap<std::uint64_t>(5, 1);
           ++seed) {
        auto options = base;
        options.move_budget = k;
        options.seed = seed;
        Simulator simulator(options, policy.run);
        const auto result = simulator.run();
        imbalances.push_back(result.imbalance.mean);
        p90s.push_back(result.imbalance.p90);
        const double rounds =
            static_cast<double>(base.steps) /
            static_cast<double>(base.rebalance_every);
        moves.push_back(static_cast<double>(result.total_moves) / rounds);
        bytes.push_back(static_cast<double>(result.total_bytes) / 1e6);
      }
      table.row()
          .add(policy.name)
          .add(policy.name == "none" || policy.name == "lpt-full" ? "-"
                                                                  : std::to_string(k))
          .add(summarize(imbalances).mean, 4)
          .add(summarize(p90s).mean, 4)
          .add(summarize(moves).mean, 4)
          .add(summarize(bytes).mean, 4);
    }
  }
  // Byte-budgeted policies (§3.2 in production terms: cap migration traffic
  // per round rather than the migration count).
  for (Cost bytes : {Cost{2000}, Cost{10000}}) {
    std::vector<double> imbalances, p90s, moves, total_bytes;
    for (std::uint64_t seed = 1; seed <= smoke_cap<std::uint64_t>(5, 1);
         ++seed) {
      auto options = base;
      options.byte_costs = true;
      options.seed = seed;
      Simulator simulator(options, cost_partition_policy(bytes));
      const auto result = simulator.run();
      imbalances.push_back(result.imbalance.mean);
      p90s.push_back(result.imbalance.p90);
      const double rounds = static_cast<double>(base.steps) /
                            static_cast<double>(base.rebalance_every);
      moves.push_back(static_cast<double>(result.total_moves) / rounds);
      total_bytes.push_back(static_cast<double>(result.total_bytes) / 1e6);
    }
    table.row()
        .add("cost-partition")
        .add(std::to_string(bytes) + "B")
        .add(summarize(imbalances).mean, 4)
        .add(summarize(p90s).mean, 4)
        .add(summarize(moves).mean, 4)
        .add(summarize(total_bytes).mean, 4);
  }
  emit_table(table, "e11_sim");
  std::cout << "\nExpected shape: 'none' drifts to the worst imbalance; "
               "bounded-k policies close most of the gap to 'lpt-full' while "
               "migrating orders of magnitude less; larger k helps with "
               "diminishing returns.\n";
  return 0;
}
