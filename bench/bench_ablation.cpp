// Ablation studies for the design choices DESIGN.md calls out:
//   A. GREEDY's reinsertion order (the paper leaves it "arbitrary").
//   B. Local-search polishing after M-PARTITION / best-of (our extension -
//      the guarantee is unchanged, the practical gap closes).
//   C. The knapsack relaxation eps inside cost-PARTITION (quality vs time).
//   D. Robustness to forced maintenance drains in the simulator.

#include <iostream>

#include "algo/cost_partition.h"
#include "algo/greedy.h"
#include "algo/local_search.h"
#include "algo/m_partition.h"
#include "algo/rebalancer.h"
#include "bench_common.h"
#include "core/lower_bounds.h"
#include "sim/policies.h"
#include "sim/simulator.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace lrb;
  using namespace lrb::bench;
  if (!parse_bench_flags(argc, argv)) return 2;

  std::cout << "Ablation A: GREEDY reinsertion order\n\n";
  {
    Table table({"workload", "as-removed", "largest-first", "smallest-first"});
    // The tight family first: order is the difference between bad and worse.
    for (ProcId m : {ProcId{4}, ProcId{8}}) {
      const auto family = greedy_tight_instance(m);
      table.row().add("tight m=" + std::to_string(m));
      for (auto order : {GreedyOrder::kAsRemoved, GreedyOrder::kLargestFirst,
                         GreedyOrder::kSmallestFirst}) {
        table.add(ratio(greedy_rebalance(family.instance, family.k, order).makespan,
                        family.opt),
                  4);
      }
    }
    for (const auto& family : small_families()) {
      std::vector<double> r[3];
      for (std::uint64_t seed = 0; seed < smoke_cap<std::uint64_t>(30, 2);
           ++seed) {
        const auto inst = random_instance(family.options, seed);
        const Size opt = exact_opt_moves(inst, 4);
        int idx = 0;
        for (auto order : {GreedyOrder::kAsRemoved, GreedyOrder::kLargestFirst,
                           GreedyOrder::kSmallestFirst}) {
          r[idx++].push_back(
              ratio(greedy_rebalance(inst, 4, order).makespan, opt));
        }
      }
      table.row().add(family.name + " (mean)");
      for (auto& samples : r) table.add(summarize(samples).mean, 4);
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Ablation B: local-search polishing (n = 2000, vs certified "
               "lower bound)\n\n";
  {
    Table table({"family", "k", "m-partition", "mp + ls", "best-of",
                 "best-of + ls", "ls steps"});
    for (const auto& family :
         large_families(smoke_cap<std::size_t>(2000, 200), 16)) {
      for (std::int64_t k : {20, 80}) {
        std::vector<double> mp_r, mpls_r, best_r, bestls_r, steps;
        for (std::uint64_t seed = 0; seed < smoke_cap<std::uint64_t>(8, 1);
             ++seed) {
          const auto inst = random_instance(family.options, seed);
          const Size lb = combined_lower_bound(inst, k);
          const auto mp = m_partition_rebalance(inst, k);
          mp_r.push_back(ratio(mp.makespan, lb));
          LocalSearchOptions options;
          options.max_moves = k;
          LocalSearchStats stats;
          const auto mpls = local_search_improve(inst, mp, options, &stats);
          mpls_r.push_back(ratio(mpls.makespan, lb));
          steps.push_back(static_cast<double>(stats.rounds));
          const auto best = best_of_rebalance(inst, k);
          best_r.push_back(ratio(best.makespan, lb));
          const auto bestls = local_search_improve(inst, best, options);
          bestls_r.push_back(ratio(bestls.makespan, lb));
        }
        table.row()
            .add(family.name)
            .add(k)
            .add(summarize(mp_r).mean, 4)
            .add(summarize(mpls_r).mean, 4)
            .add(summarize(best_r).mean, 4)
            .add(summarize(bestls_r).mean, 4)
            .add(summarize(steps).mean, 4);
      }
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Ablation C: knapsack relaxation eps inside cost-PARTITION\n\n";
  {
    GeneratorOptions gen;
    gen.num_jobs = smoke_cap<std::size_t>(60, 20);
    gen.num_procs = 6;
    gen.max_size = 500;
    gen.placement = PlacementPolicy::kHotspot;
    gen.cost_model = CostModel::kProportional;
    Table table({"eps", "mean makespan", "mean cost", "mean ms"});
    for (double eps : {0.01, 0.05, 0.2, 0.5}) {
      std::vector<double> makespans, costs, times;
      for (std::uint64_t seed = 0; seed < smoke_cap<std::uint64_t>(10, 2);
           ++seed) {
        const auto inst = random_instance(gen, seed);
        CostPartitionOptions options;
        options.budget = inst.total_size() / 10;
        options.eps = eps;
        options.max_knapsack_cells = 1 << 18;  // force the relaxation path
        Timer timer;
        const auto result = cost_partition_rebalance(inst, options);
        times.push_back(timer.millis());
        makespans.push_back(static_cast<double>(result.makespan));
        costs.push_back(static_cast<double>(result.cost));
      }
      table.row()
          .add(eps, 3)
          .add(summarize(makespans).mean, 5)
          .add(summarize(costs).mean, 5)
          .add(summarize(times).mean, 4);
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Ablation D: robustness to maintenance drains (sim)\n\n";
  {
    sim::SimOptions base;
    base.workload.num_sites = 200;
    base.num_servers = 10;
    base.steps = smoke_cap(200, 40);
    base.rebalance_every = 5;
    base.move_budget = 10;
    Table table({"policy", "drain prob", "mean imb", "forced moves",
                 "policy moves"});
    for (const auto& policy : standard_rebalancers()) {
      if (policy.name == "lpt-full") continue;
      for (double drain : {0.0, 0.05, 0.15}) {
        std::vector<double> imb, forced, voluntary;
        for (std::uint64_t seed = 1; seed <= smoke_cap<std::uint64_t>(4, 1);
             ++seed) {
          auto options = base;
          options.drain_prob = drain;
          options.seed = seed;
          sim::Simulator simulator(options, policy.run);
          const auto result = simulator.run();
          imb.push_back(result.mean_imbalance);
          forced.push_back(static_cast<double>(result.total_forced_moves));
          voluntary.push_back(static_cast<double>(result.total_moves));
        }
        table.row()
            .add(policy.name)
            .add(drain, 3)
            .add(summarize(imb).mean, 4)
            .add(summarize(forced).mean, 4)
            .add(summarize(voluntary).mean, 4);
      }
    }
    table.print(std::cout);
  }
  std::cout << "\nAblation E: migration latency (gradual plan execution)\n\n";
  {
    sim::SimOptions base;
    base.workload.num_sites = 200;
    base.num_servers = 10;
    base.steps = smoke_cap(200, 40);
    base.rebalance_every = 5;
    base.move_budget = 10;
    Table table({"migrations/step", "mean imb", "p90 imb", "total moves"});
    for (std::size_t rate : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                             std::size_t{10}}) {
      std::vector<double> imb, p90, moves;
      for (std::uint64_t seed = 1; seed <= smoke_cap<std::uint64_t>(4, 1);
           ++seed) {
        auto options = base;
        options.migrations_per_step = rate;
        options.seed = seed;
        sim::Simulator simulator(options,
                                 sim::unit_policy("greedy"));
        const auto result = simulator.run();
        imb.push_back(result.mean_imbalance);
        p90.push_back(result.imbalance.p90);
        moves.push_back(static_cast<double>(result.total_moves));
      }
      table.row()
          .add(rate == 0 ? std::string("instant") : std::to_string(rate))
          .add(summarize(imb).mean, 4)
          .add(summarize(p90).mean, 4)
          .add(summarize(moves).mean, 4);
    }
    table.print(std::cout);
  }
  std::cout << "\nExpected shapes: (A) order barely matters off the tight "
               "family; (B) polishing closes most of the remaining gap at "
               "zero guarantee cost; (C) smaller eps buys little quality at "
               "real cpu cost; (D) active policies absorb drains, idle ones "
               "accumulate imbalance; (E) slow migration drains degrade "
               "tracking gracefully toward the idle baseline.\n";
  return 0;
}
