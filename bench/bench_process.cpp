// Experiment E17: the process-migration debate from the paper's
// introduction. Lazowska et al. [9] claim migration only pays for
// unrealistic CPU-bound workloads; Harchol-Balter & Downey [6] counter that
// real (heavy-tailed) process lifetimes make it worthwhile. Same simulator,
// same arrival process, same MEAN lifetime - only the tail differs.

#include <iostream>

#include "algo/rebalancer.h"
#include "bench_common.h"
#include "sim/process_sim.h"

int main(int argc, char** argv) {
  using namespace lrb;
  using namespace lrb::bench;
  using namespace lrb::sim;
  if (!parse_bench_flags(argc, argv)) return 2;

  std::cout << "E17: does process migration pay? (m = 8, 3000 steps, mean "
               "lifetime 60 steps, 6 seeds per row)\n\n";

  struct Row {
    const char* tail;
    LifetimeModel model;
    double alpha;
    std::size_t rebalance_every;  // 0 = never migrate
    std::int64_t k;
  };
  const Row rows[] = {
      {"heavy (Pareto a=1.1)", LifetimeModel::kPareto, 1.1, 0, 0},
      {"heavy (Pareto a=1.1)", LifetimeModel::kPareto, 1.1, 10, 4},
      {"heavy (Pareto a=1.1)", LifetimeModel::kPareto, 1.1, 5, 8},
      {"light (exponential)", LifetimeModel::kExponential, 0, 0, 0},
      {"light (exponential)", LifetimeModel::kExponential, 0, 10, 4},
      {"light (exponential)", LifetimeModel::kExponential, 0, 5, 8},
  };

  Table table({"lifetimes", "migration", "mean imb", "p90 imb",
               "mean slowdown", "migrations/1k steps"});
  for (const auto& row : rows) {
    std::vector<double> imb, p90, slowdown, migrations;
    for (std::uint64_t seed = 1; seed <= smoke_cap<std::uint64_t>(6, 1);
         ++seed) {
      ProcessSimOptions options;
      options.num_procs = 8;
      options.steps = smoke_cap<std::size_t>(3000, 200);
      options.arrival_rate = 1.5;
      options.mean_lifetime = 60.0;
      options.lifetime_model = row.model;
      if (row.alpha > 0) options.pareto_alpha = row.alpha;
      options.rebalance_every = row.rebalance_every;
      options.move_budget = row.k;
      options.seed = seed;
      ProcessPolicy policy;
      if (row.rebalance_every > 0) {
        policy = [](const Instance& inst, std::int64_t k) {
          return best_of_rebalance(inst, k);
        };
      }
      const auto result = run_process_sim(options, policy);
      imb.push_back(result.imbalance.mean);
      p90.push_back(result.imbalance.p90);
      slowdown.push_back(result.mean_slowdown);
      migrations.push_back(static_cast<double>(result.migrations) * 1000.0 /
                           static_cast<double>(options.steps));
    }
    table.row()
        .add(row.tail)
        .add(row.rebalance_every == 0
                 ? std::string("never")
                 : "every " + std::to_string(row.rebalance_every) +
                       ", k=" + std::to_string(row.k))
        .add(summarize(imb).mean, 4)
        .add(summarize(p90).mean, 4)
        .add(summarize(slowdown).mean, 4)
        .add(summarize(migrations).mean, 4);
  }
  emit_table(table, "e17_process");
  std::cout << "\nExpected shape: heavy-tailed lifetimes leave visibly more "
               "imbalance on the table when never migrating, and migration's "
               "absolute gain is larger there ([6]'s position); under "
               "exponential lifetimes there is less to win in the first "
               "place ([9]'s position). Same mean lifetime in both rows - "
               "only the tail differs.\n";
  return 0;
}
