// Experiment E4 (Theorem 3): GREEDY and M-PARTITION run in O(n log n).
//
// Sweeps n geometrically, times both algorithms (plus the reference
// quadratic M-PARTITION at the small end to show the separation), and fits
// the log-log slope of time versus n: an O(n log n) algorithm lands just
// above 1.0, a quadratic one near 2.0.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "algo/greedy.h"
#include "algo/m_partition.h"
#include "bench_common.h"

namespace {

template <typename F>
double time_best_of(int reps, F&& body) {
  double best = 1e18;
  for (int r = 0; r < reps; ++r) {
    lrb::Timer timer;
    body();
    best = std::min(best, timer.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lrb;
  using namespace lrb::bench;
  if (!parse_bench_flags(argc, argv)) return 2;

  std::cout << "E4 / Theorem 3: runtime scaling (single core)\n\n";
  GeneratorOptions gen;
  gen.num_procs = 64;
  gen.max_size = 10000;
  gen.placement = PlacementPolicy::kHotspot;

  Table table({"n", "greedy ms", "m-partition ms", "mp guesses",
               "reference ms", "mp us/(n lg n)"});
  std::vector<double> ns, greedy_times, mp_times;
  const std::size_t max_n = smoke_cap<std::size_t>(1 << 19, 1 << 11);
  const int reps = smoke_cap(3, 1);
  for (std::size_t n = smoke_cap<std::size_t>(1 << 12, 1 << 10); n <= max_n;
       n <<= 1) {
    gen.num_jobs = n;
    const auto inst = random_instance(gen, 7);
    const auto k = static_cast<std::int64_t>(n / 100);

    const double greedy_s =
        time_best_of(reps, [&] { (void)greedy_rebalance(inst, k); });
    MPartitionStats stats;
    const double mp_s = time_best_of(
        reps, [&] { (void)m_partition_rebalance(inst, k, &stats); });
    // The quadratic reference only at sizes where it is not painful.
    double ref_s = -1;
    if (n <= (1 << 14)) {
      ref_s = time_best_of(
          1, [&] { (void)m_partition_rebalance_reference(inst, k); });
    }

    const double nlogn =
        static_cast<double>(n) * std::log2(static_cast<double>(n));
    ns.push_back(static_cast<double>(n));
    greedy_times.push_back(greedy_s);
    mp_times.push_back(mp_s);
    table.row()
        .add(static_cast<std::uint64_t>(n))
        .add(greedy_s * 1e3, 4)
        .add(mp_s * 1e3, 4)
        .add(static_cast<std::uint64_t>(stats.guesses_evaluated))
        .add(ref_s < 0 ? std::string("-") : format_double(ref_s * 1e3, 4))
        .add(mp_s * 1e6 / nlogn, 3);
  }
  emit_table(table, "e4_scaling");

  std::cout << "\nlog-log slope (1.0 = linear, 2.0 = quadratic):\n";
  std::cout << "  greedy:      " << format_double(loglog_slope(ns, greedy_times), 3)
            << "\n";
  std::cout << "  m-partition: " << format_double(loglog_slope(ns, mp_times), 3)
            << "\n";
  std::cout << "\nExpected shape: both slopes close to 1 (the log factor adds "
               "~0.05-0.15); the us/(n lg n) column is roughly flat; the "
               "reference implementation grows visibly faster.\n";
  return 0;
}
