// Experiment E16: the dynamic setting from the paper's abstract - an online
// schedule erodes as jobs depart; periodic bounded rebalancing restores it.
// Measures the tracking ratio makespan / offline-bound along arrival +
// departure traces for a grid of (rebalance interval, move budget k),
// including the two degenerate corners: never rebalance (pure Graham) and
// arrivals-only (where Graham's 2 - 1/m guarantee applies unconditionally).

#include <iostream>

#include "algo/m_partition.h"
#include "algo/rebalancer.h"
#include "bench_common.h"
#include "online/scheduler.h"
#include "online/trace.h"
#include "util/rng.h"

namespace {

struct RunMetrics {
  double mean_ratio = 0;
  double max_ratio = 0;
  std::int64_t total_moves = 0;
};

RunMetrics run_trace(const std::vector<lrb::online::Event>& trace,
                     lrb::ProcId m, std::size_t interval, std::int64_t k,
                     bool frugal) {
  using namespace lrb;
  using namespace lrb::online;
  OnlineScheduler scheduler(m);
  std::vector<std::size_t> handles;
  RunMetrics metrics;
  double sum = 0;
  std::size_t samples = 0;
  std::size_t events = 0;
  for (const auto& event : trace) {
    if (event.kind == EventKind::kArrive) {
      handles.push_back(scheduler.on_arrive(event.size, event.move_cost));
    } else {
      scheduler.on_depart(handles[event.arrival_index]);
    }
    ++events;
    if (interval > 0 && events % interval == 0 && scheduler.num_alive() > 0) {
      const auto result = scheduler.rebalance(
          [frugal](const Instance& inst, std::int64_t budget) {
            // M-PARTITION stops at its 1.5 guarantee (frugal); best-of also
            // runs GREEDY, which spends the budget chasing the minimum.
            return frugal ? m_partition_rebalance(inst, budget)
                          : best_of_rebalance(inst, budget);
          },
          k);
      metrics.total_moves += result.moves;
    }
    if (scheduler.num_alive() > 0) {
      const double ratio = static_cast<double>(scheduler.makespan()) /
                           static_cast<double>(scheduler.offline_bound());
      sum += ratio;
      metrics.max_ratio = std::max(metrics.max_ratio, ratio);
      ++samples;
    }
  }
  metrics.mean_ratio = samples > 0 ? sum / static_cast<double>(samples) : 1.0;
  return metrics;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lrb;
  using namespace lrb::bench;
  using namespace lrb::online;
  if (!parse_bench_flags(argc, argv)) return 2;

  std::cout << "E16: online arrivals/departures with periodic bounded "
               "rebalancing (m = 6, 800 events, 8 seeds per row)\n\n";

  TraceOptions churny;
  churny.num_events = smoke_cap<std::size_t>(800, 120);
  churny.departure_fraction = 0.45;
  churny.bias_large_departures = true;

  TraceOptions arrivals_only = churny;
  arrivals_only.departure_fraction = 0.0;
  arrivals_only.bias_large_departures = false;

  struct Config {
    const char* name;
    const TraceOptions* trace;
    std::size_t interval;  // 0 = never rebalance
    std::int64_t k;
    bool frugal;
  };
  const Config configs[] = {
      {"arrivals only, no rebalance", &arrivals_only, 0, 0, false},
      {"churny, no rebalance", &churny, 0, 0, false},
      {"churny, every 50, k=8, m-partition", &churny, 50, 8, true},
      {"churny, every 100 events k=2", &churny, 100, 2, false},
      {"churny, every 50 events k=2", &churny, 50, 2, false},
      {"churny, every 50 events k=8", &churny, 50, 8, false},
      {"churny, every 10 events k=8", &churny, 10, 8, false},
  };

  // Build-up / drain-down traces: 300 arrivals, then 260 departures with no
  // arrivals to backfill the holes - the regime where rebalancing is the
  // only healing mechanism.
  auto drain_down_trace = [&](std::uint64_t seed) {
    TraceOptions build = arrivals_only;
    build.num_events = 300;
    auto trace = random_trace(build, seed);
    std::vector<std::size_t> order(300);
    for (std::size_t i = 0; i < 300; ++i) order[i] = i;
    Rng rng(seed ^ 0xabcdefULL);
    shuffle(std::span<std::size_t>(order), rng);
    for (std::size_t i = 0; i < 260; ++i) {
      Event event;
      event.kind = EventKind::kDepart;
      event.arrival_index = order[i];
      trace.push_back(event);
    }
    return trace;
  };

  Table table({"configuration", "mean ratio", "max ratio", "moves/1k events"});
  for (const auto& config : configs) {
    std::vector<double> means, maxes, moves;
    for (std::uint64_t seed = 0; seed < smoke_cap<std::uint64_t>(8, 2);
         ++seed) {
      const auto trace = random_trace(*config.trace, seed);
      const auto metrics =
          run_trace(trace, 6, config.interval, config.k, config.frugal);
      means.push_back(metrics.mean_ratio);
      maxes.push_back(metrics.max_ratio);
      moves.push_back(static_cast<double>(metrics.total_moves) * 1000.0 /
                      static_cast<double>(config.trace->num_events));
    }
    table.row()
        .add(config.name)
        .add(summarize(means).mean, 4)
        .add(summarize(maxes).mean, 4)
        .add(summarize(moves).mean, 4);
  }
  // Drain-down rows.
  struct DrainConfig {
    const char* name;
    std::size_t interval;
    std::int64_t k;
  };
  const DrainConfig drain_configs[] = {
      {"drain-down, no rebalance", 0, 0},
      {"drain-down, every 25 events k=4", 25, 4},
      {"drain-down, every 10 events k=8", 10, 8},
  };
  for (const auto& config : drain_configs) {
    std::vector<double> means, maxes, moves;
    for (std::uint64_t seed = 0; seed < smoke_cap<std::uint64_t>(8, 2);
         ++seed) {
      const auto trace = drain_down_trace(seed);
      const auto metrics = run_trace(trace, 6, config.interval, config.k, false);
      means.push_back(metrics.mean_ratio);
      maxes.push_back(metrics.max_ratio);
      moves.push_back(static_cast<double>(metrics.total_moves) * 1000.0 /
                      static_cast<double>(trace.size()));
    }
    table.row()
        .add(config.name)
        .add(summarize(means).mean, 4)
        .add(summarize(maxes).mean, 4)
        .add(summarize(moves).mean, 4);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: arrivals-only stays within Graham's "
               "2 - 1/m; departures push the unmanaged run's max ratio well "
               "above it; a handful of moves per hundred events pulls both "
               "mean and max back down, with diminishing returns in k and "
               "frequency - the dynamic story that motivates the paper.\n";
  return 0;
}
